package rdd

import (
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"adrdedup/internal/cluster"
)

// sortedSink is a concurrency-safe int accumulator for Foreach tests.
type sortedSink struct {
	mu sync.Mutex
	vs []int
}

func (s *sortedSink) add(v int) {
	s.mu.Lock()
	s.vs = append(s.vs, v)
	s.mu.Unlock()
}

func (s *sortedSink) sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := 0
	for _, v := range s.vs {
		t += v
	}
	return t
}

func kvPairs(n, keys int) []Pair[int, int] {
	out := make([]Pair[int, int], n)
	for i := range out {
		out[i] = KV(i%keys, i)
	}
	return out
}

func TestPartitionByGroupsKeys(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(100, 10), 5)
	s := PartitionBy(r, 4)
	if s.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", s.NumPartitions())
	}
	// Every key must land wholly inside one partition.
	parts, err := RunJob(s, "inspect", func(_ *cluster.TaskContext, p int, data []Pair[int, int]) (map[int]bool, error) {
		keys := make(map[int]bool)
		for _, kv := range data {
			keys[kv.Key] = true
		}
		return keys, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	owner := make(map[int]int)
	for p, keys := range parts {
		for k := range keys {
			if prev, ok := owner[k]; ok && prev != p {
				t.Errorf("key %d appears in partitions %d and %d", k, prev, p)
			}
			owner[k] = p
		}
	}
	// No records lost.
	n, err := s.Count()
	if err != nil || n != 100 {
		t.Errorf("count after shuffle = %d, %v", n, err)
	}
}

func TestPartitionByIdempotentWhenCoPartitioned(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(50, 5), 3)
	s := PartitionBy(r, 4)
	if PartitionBy(s, 4) != s {
		t.Error("re-partitioning a co-partitioned RDD should be a no-op")
	}
	if PartitionBy(s, 5) == s {
		t.Error("different partition count must produce a new RDD")
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(100, 10), 5)
	got, err := ReduceByKey(r, func(a, b int) int { return a + b }, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d keys, want 10", len(got))
	}
	// Key k holds values k, k+10, ..., k+90: sum = 10k + 450.
	for _, kv := range got {
		want := 10*kv.Key + 450
		if kv.Value != want {
			t.Errorf("key %d sum = %d, want %d", kv.Key, kv.Value, want)
		}
	}
}

func TestReduceByKeyEqualsGroupThenFold(t *testing.T) {
	// Algebraic law: reduceByKey(f) == groupByKey().mapValues(fold f).
	ctx := testCtx()
	rng := rand.New(rand.NewSource(11))
	data := make([]Pair[int, int], 500)
	for i := range data {
		data[i] = KV(rng.Intn(20), rng.Intn(1000))
	}
	r := Parallelize(ctx, data, 7)
	f := func(a, b int) int { return a + b }

	reduced, err := ReduceByKey(r, f, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := GroupByKey(r, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]int)
	for _, kv := range grouped {
		acc := 0
		for _, v := range kv.Value {
			acc += v
		}
		want[kv.Key] = acc
	}
	if len(reduced) != len(want) {
		t.Fatalf("key counts differ: %d vs %d", len(reduced), len(want))
	}
	for _, kv := range reduced {
		if want[kv.Key] != kv.Value {
			t.Errorf("key %d: reduceByKey %d != group-fold %d", kv.Key, kv.Value, want[kv.Key])
		}
	}
}

func TestAggregateByKey(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(100, 4), 5)
	// Count per key via aggregate.
	got, err := AggregateByKey(r,
		func() int { return 0 },
		func(acc, _ int) int { return acc + 1 },
		func(a, b int) int { return a + b }, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range got {
		if kv.Value != 25 {
			t.Errorf("key %d count = %d, want 25", kv.Key, kv.Value)
		}
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(30, 3), 4)
	got, err := GroupByKey(r, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("groups = %d, want 3", len(got))
	}
	for _, kv := range got {
		if len(kv.Value) != 10 {
			t.Errorf("key %d has %d values, want 10", kv.Key, len(kv.Value))
		}
		for _, v := range kv.Value {
			if v%3 != kv.Key {
				t.Errorf("value %d grouped under wrong key %d", v, kv.Key)
			}
		}
	}
}

func TestJoin(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, []Pair[string, int]{
		KV("a", 1), KV("b", 2), KV("a", 3), KV("c", 4),
	}, 2)
	right := Parallelize(ctx, []Pair[string, string]{
		KV("a", "x"), KV("b", "y"), KV("d", "z"),
	}, 2)
	got, err := Join(left, right, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		k string
		v int
		w string
	}
	var rows []row
	for _, kv := range got {
		rows = append(rows, row{kv.Key, kv.Value.A, kv.Value.B})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].k != rows[j].k {
			return rows[i].k < rows[j].k
		}
		return rows[i].v < rows[j].v
	})
	want := []row{{"a", 1, "x"}, {"a", 3, "x"}, {"b", 2, "y"}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("join rows = %v, want %v", rows, want)
	}
}

func TestJoinSizeMatchesNestedLoop(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(5))
	var left []Pair[int, int]
	var right []Pair[int, int]
	for i := 0; i < 200; i++ {
		left = append(left, KV(rng.Intn(10), i))
	}
	for i := 0; i < 100; i++ {
		right = append(right, KV(rng.Intn(10), i))
	}
	countL := make(map[int]int)
	countR := make(map[int]int)
	for _, kv := range left {
		countL[kv.Key]++
	}
	for _, kv := range right {
		countR[kv.Key]++
	}
	var want int64
	for k, c := range countL {
		want += int64(c * countR[k])
	}
	j := Join(Parallelize(ctx, left, 4), Parallelize(ctx, right, 3), 5)
	n, err := j.Count()
	if err != nil || n != want {
		t.Errorf("join count = %d, want %d (%v)", n, want, err)
	}
}

func TestCoGroup(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, []Pair[string, int]{KV("a", 1), KV("a", 2), KV("b", 3)}, 2)
	right := Parallelize(ctx, []Pair[string, string]{KV("a", "x"), KV("c", "y")}, 1)
	got, err := CoGroup(left, right, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]Tuple2[[]int, []string])
	for _, kv := range got {
		byKey[kv.Key] = kv.Value
	}
	if len(byKey) != 3 {
		t.Fatalf("cogroup keys = %d, want 3", len(byKey))
	}
	a := byKey["a"]
	sort.Ints(a.A)
	if !reflect.DeepEqual(a.A, []int{1, 2}) || !reflect.DeepEqual(a.B, []string{"x"}) {
		t.Errorf("cogroup[a] = %v", a)
	}
	if c := byKey["c"]; len(c.A) != 0 || !reflect.DeepEqual(c.B, []string{"y"}) {
		t.Errorf("cogroup[c] = %v", c)
	}
}

func TestMapValuesKeysValues(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []Pair[string, int]{KV("a", 1), KV("b", 2)}, 1)
	mv, err := MapValues(r, func(v int) int { return v * 10 }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if mv[0].Value != 10 || mv[1].Value != 20 {
		t.Errorf("MapValues = %v", mv)
	}
	ks, err := Keys(r).Collect()
	if err != nil || !reflect.DeepEqual(ks, []string{"a", "b"}) {
		t.Errorf("Keys = %v, %v", ks, err)
	}
	vs, err := Values(r).Collect()
	if err != nil || !reflect.DeepEqual(vs, []int{1, 2}) {
		t.Errorf("Values = %v, %v", vs, err)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(60, 6), 4)
	got, err := CountByKey(r)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range got {
		if c != 10 {
			t.Errorf("key %d count = %d, want 10", k, c)
		}
	}
}

func TestHashKeyDistribution(t *testing.T) {
	// Sequential int keys must spread across buckets, not collide into few.
	buckets := make(map[uint64]int)
	const n, b = 10000, 16
	for i := 0; i < n; i++ {
		buckets[hashKey(i)%b]++
	}
	for bucket, c := range buckets {
		if c < n/b/2 || c > n/b*2 {
			t.Errorf("bucket %d has %d of %d keys: poor distribution", bucket, c, n)
		}
	}
	// Strings and default types hash without panicking and are stable.
	if hashKey("abc") != hashKey("abc") {
		t.Error("string hash unstable")
	}
	type custom struct{ X int }
	if hashKey(custom{1}) != hashKey(custom{1}) {
		t.Error("fallback hash unstable")
	}
	if hashKey(true) == hashKey(false) {
		t.Error("bool hash collision")
	}
}

// TestHashKeyIntegerFastPath pins every integer width to the splitmix64
// fast path: the hash must equal splitmix64 of the two's-complement
// sign/zero extension of the key. uint8 and uint16 used to fall through to
// the fmt.Fprintf fallback, hashing differently from (and ~50x slower than)
// the other widths.
func TestHashKeyIntegerFastPath(t *testing.T) {
	neg := int64(-5)
	cases := []struct {
		name string
		key  any
		want uint64
	}{
		{"int", int(-5), splitmix64(uint64(neg))},
		{"int8", int8(-5), splitmix64(uint64(neg))},
		{"int16", int16(-5), splitmix64(uint64(neg))},
		{"int32", int32(-5), splitmix64(uint64(neg))},
		{"int64", int64(-5), splitmix64(uint64(neg))},
		{"uint", uint(200), splitmix64(200)},
		{"uint8", uint8(200), splitmix64(200)},
		{"uint16", uint16(60000), splitmix64(60000)},
		{"uint32", uint32(60000), splitmix64(60000)},
		{"uint64", uint64(60000), splitmix64(60000)},
	}
	for _, c := range cases {
		if got := hashKey(c.key); got != c.want {
			t.Errorf("hashKey(%s %v) = %d, want fast-path splitmix64 value %d",
				c.name, c.key, got, c.want)
		}
	}
	// Same numeric value, different width: buckets must agree, so keyed
	// data partitioned under a uint8 key co-partitions with int keys.
	if hashKey(uint8(42)) != hashKey(int(42)) || hashKey(uint16(42)) != hashKey(int64(42)) {
		t.Error("narrow unsigned widths hash differently from wide integers")
	}
}

// TestHashKeyStringFNVPinned pins the inlined string fast path to the
// stdlib FNV-1a digest and to fixed constants, so string shuffle buckets
// never move across releases (moving them would silently repartition any
// persisted string-keyed layout).
func TestHashKeyStringFNVPinned(t *testing.T) {
	for _, s := range []string{"", "a", "abc", "aspirin", "ADR report", "头痛", "case-123"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := hashKey(s), h.Sum64(); got != want {
			t.Errorf("hashKey(%q) = %d, want stdlib FNV-1a %d", s, got, want)
		}
	}
	if got := hashKey(""); got != 14695981039346656037 {
		t.Errorf("hashKey(\"\") = %d, want FNV-1a offset basis", got)
	}
	if got := hashKey("a"); got != 12638187200555641996 {
		t.Errorf("hashKey(\"a\") = %d, want pinned FNV-1a value", got)
	}
}
