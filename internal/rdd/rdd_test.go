package rdd

import (
	"reflect"
	"sort"
	"testing"

	"adrdedup/internal/cluster"
)

func testCtx() *Context {
	return NewContext(cluster.New(cluster.Config{Executors: 4, CoresPerExecutor: 2}))
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := testCtx()
	data := ints(100)
	r := Parallelize(ctx, data, 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("partitions = %d, want 7", r.NumPartitions())
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, data) {
		t.Errorf("Collect changed data or order")
	}
}

func TestParallelizeEmptyAndSmall(t *testing.T) {
	ctx := testCtx()
	empty := Parallelize(ctx, []int(nil), 4)
	n, err := empty.Count()
	if err != nil || n != 0 {
		t.Errorf("empty Count = %d, %v", n, err)
	}
	small := Parallelize(ctx, []int{1, 2}, 10)
	if small.NumPartitions() > 2 {
		t.Errorf("partitions %d should be capped at data length", small.NumPartitions())
	}
	got, err := small.Collect()
	if err != nil || !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("small Collect = %v, %v", got, err)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(20), 3)
	doubled, err := Map(r, func(x int) int { return 2 * x }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range doubled {
		if v != 2*i {
			t.Fatalf("Map wrong at %d: %d", i, v)
		}
	}
	evens, err := Filter(r, func(x int) bool { return x%2 == 0 }).Count()
	if err != nil || evens != 10 {
		t.Errorf("Filter count = %d, %v", evens, err)
	}
	pairsN, err := FlatMap(r, func(x int) []int { return []int{x, x} }).Count()
	if err != nil || pairsN != 40 {
		t.Errorf("FlatMap count = %d, %v", pairsN, err)
	}
}

func TestMapFusionProperty(t *testing.T) {
	// map(f) then map(g) must equal map(g∘f) — the lazy-evaluation law.
	ctx := testCtx()
	r := Parallelize(ctx, ints(50), 4)
	f := func(x int) int { return x + 3 }
	g := func(x int) int { return x * 2 }
	a, err := Map(Map(r, f), g).Collect()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(r, func(x int) int { return g(f(x)) }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("map fusion law violated")
	}
}

func TestMapPartitionsWithIndex(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(10), 3)
	got, err := MapPartitionsWithIndex(r, func(p int, in []int) ([]int, error) {
		out := make([]int, len(in))
		for i := range in {
			out[i] = p
		}
		return out, nil
	}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Errorf("partition indices not in partition order: %v", got)
	}
}

func TestUnionCountAdditive(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, ints(30), 3)
	b := Parallelize(ctx, ints(20), 2)
	u := Union(a, b)
	if u.NumPartitions() != 5 {
		t.Errorf("union partitions = %d, want 5", u.NumPartitions())
	}
	n, err := u.Count()
	if err != nil || n != 50 {
		t.Errorf("union count = %d, %v", n, err)
	}
	got, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]int{}, ints(30)...), ints(20)...)
	if !reflect.DeepEqual(got, want) {
		t.Error("union order should be a-then-b")
	}
}

func TestCartesian(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, []int{1, 2, 3}, 2)
	b := Parallelize(ctx, []string{"x", "y"}, 2)
	got, err := Cartesian(a, b).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("cartesian size = %d, want 6", len(got))
	}
	seen := make(map[Tuple2[int, string]]bool)
	for _, p := range got {
		seen[p] = true
	}
	for _, x := range []int{1, 2, 3} {
		for _, y := range []string{"x", "y"} {
			if !seen[Tuple2[int, string]{x, y}] {
				t.Errorf("missing pair (%d,%s)", x, y)
			}
		}
	}
}

func TestSampleDeterministicAndProportional(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(10000), 8)
	s1, err := Sample(r, 0.3, 99).Collect()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Sample(r, 0.3, 99).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("same seed produced different samples")
	}
	if len(s1) < 2500 || len(s1) > 3500 {
		t.Errorf("sample size %d far from 3000", len(s1))
	}
}

func TestCoalesce(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(100), 10)
	c := Coalesce(r, 3)
	if c.NumPartitions() != 3 {
		t.Fatalf("coalesced partitions = %d", c.NumPartitions())
	}
	got, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ints(100)) {
		t.Error("coalesce must preserve order")
	}
	if Coalesce(r, 20) != r {
		t.Error("coalesce to more partitions should be a no-op")
	}
}

func TestDistinct(t *testing.T) {
	ctx := testCtx()
	data := []int{1, 2, 2, 3, 3, 3, 4, 4, 4, 4}
	r := Parallelize(ctx, data, 4)
	got, err := Distinct(r, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("Distinct = %v", got)
	}
}

func TestReduceAndAggregate(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(101), 7)
	sum, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil || sum != 5050 {
		t.Errorf("Reduce sum = %d, %v", sum, err)
	}
	_, err = Reduce(Parallelize(ctx, []int(nil), 1), func(a, b int) int { return a + b })
	if err != ErrEmpty {
		t.Errorf("Reduce on empty = %v, want ErrEmpty", err)
	}
	cnt, err := Aggregate(r, func() int { return 0 },
		func(acc, _ int) int { return acc + 1 },
		func(a, b int) int { return a + b })
	if err != nil || cnt != 101 {
		t.Errorf("Aggregate count = %d, %v", cnt, err)
	}
}

func TestTakeFirst(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(10), 3)
	got, err := r.Take(4)
	if err != nil || !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("Take = %v, %v", got, err)
	}
	got, err = r.Take(100)
	if err != nil || len(got) != 10 {
		t.Errorf("oversized Take = %v, %v", got, err)
	}
	first, err := r.First()
	if err != nil || first != 0 {
		t.Errorf("First = %d, %v", first, err)
	}
	_, err = Parallelize(ctx, []int(nil), 1).First()
	if err != ErrEmpty {
		t.Errorf("First on empty = %v", err)
	}
}

func TestTopKAndBoundedMin(t *testing.T) {
	ctx := testCtx()
	data := []int{9, 1, 8, 2, 7, 3, 6, 4, 5, 0}
	r := Parallelize(ctx, data, 4)
	got, err := TopK(r, 3, func(a, b int) bool { return a < b })
	if err != nil || !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("TopK = %v, %v", got, err)
	}
	if got := BoundedMin(data, 0, func(a, b int) bool { return a < b }); got != nil {
		t.Errorf("BoundedMin n=0 = %v", got)
	}
	if got := BoundedMin([]int{5}, 3, func(a, b int) bool { return a < b }); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("BoundedMin short input = %v", got)
	}
}

func TestForeach(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(50), 5)
	var mu sortedSink
	if err := r.Foreach(mu.add); err != nil {
		t.Fatal(err)
	}
	if mu.sum() != 1225 {
		t.Errorf("foreach sum = %d, want 1225", mu.sum())
	}
}
