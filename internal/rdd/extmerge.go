package rdd

import (
	"fmt"
	"sort"

	"adrdedup/internal/cluster"
)

// External-memory operators.
//
// When a partition's estimated working set exceeds the executor memory budget
// and the disk overflow tier is on (Config.SpillToDisk), sorts and joins
// switch from their all-in-memory algorithms to external ones: bounded
// in-memory runs (or probe chunks) are spilled through the cluster's framed,
// compressed spill store and merged back, charging virtual disk time at
// Config.SpillMBps to the running attempt.
//
// Both external paths are *output-identical* to their in-memory counterparts
// — external merge reproduces sort.SliceStable via a run-index tie-break, the
// external join re-establishes the in-memory (right index, left position)
// emission order with a stable re-sort — so spilling remains a pure storage
// and accounting decision, pinned by the differential and property tests.
//
// Simulation honesty note: the driver process necessarily holds the decoded
// runs in real RAM during the merge; the budget is a *virtual* resource, like
// NetworkMBps. What the external path models is the extra disk traffic and
// the partition-size independence a real external algorithm buys.

// spillRoundTrip pushes one encoded payload through the spill store and reads
// it back, charging the attempt for both directions. It returns the decoded
// value, or (nil, false) when any step fails — callers then fall back to
// their resident copy, since spilling must never cost correctness.
func spillRoundTrip(tc *cluster.TaskContext, cl *cluster.Cluster, codec cluster.SpillCodec,
	v any, detail string) (any, bool) {
	raw, err := codec.Encode(v)
	if err != nil {
		return nil, false
	}
	ref, err := cl.Spill().Put(raw, tc.Executor())
	if err != nil {
		return nil, false
	}
	defer cl.Spill().Free(ref)
	tc.AddVirtualNS(cl.AccountSpillWrite(ref, detail))
	back, err := cl.Spill().Get(ref)
	if err != nil {
		return nil, false
	}
	decoded, err := codec.Decode(back)
	if err != nil {
		return nil, false
	}
	tc.AddVirtualNS(cl.AccountSpillRead(ref, detail))
	return decoded, true
}

// externalSortStable sorts data in place (and returns it) when it fits the
// executor memory budget or spilling is off; otherwise it runs an external
// merge sort: the input is cut into budget-sized consecutive runs, each
// stably sorted and spilled, then the runs are merged with a run-index
// tie-break. Because the runs are consecutive input chunks, "lower run index
// wins ties" is exactly input order, so the merged output is byte-identical
// to sort.SliceStable over the whole input (pinned by
// TestExternalSortMatchesSliceStable).
func externalSortStable[T any](tc *cluster.TaskContext, cl *cluster.Cluster, detail string,
	data []T, bytesPerRecord int64, less func(a, b T) bool) []T {
	budget := cl.ExecutorMemoryBytes()
	if !cl.SpillingEnabled() || int64(len(data))*bytesPerRecord <= budget {
		sort.SliceStable(data, func(i, j int) bool { return less(data[i], data[j]) })
		return data
	}
	runLen := int(budget / bytesPerRecord)
	if runLen < 1 {
		runLen = 1
	}
	codec := cluster.GobCodec[[]T]()
	var runs [][]T
	for lo := 0; lo < len(data); lo += runLen {
		hi := lo + runLen
		if hi > len(data) {
			hi = len(data)
		}
		run := data[lo:hi]
		sort.SliceStable(run, func(i, j int) bool { return less(run[i], run[j]) })
		// The round trip both charges the virtual disk cost and proves the
		// run survives the codec; on any failure the resident run is used.
		if back, ok := spillRoundTrip(tc, cl, codec, run,
			fmt.Sprintf("%s run %d", detail, len(runs))); ok {
			run = back.([]T)
		}
		runs = append(runs, run)
	}
	// K-way merge, lowest run index winning ties: candidates are compared
	// with strict less, so an equal head never displaces the earlier run's.
	out := make([]T, 0, len(data))
	heads := make([]int, len(runs))
	for {
		best := -1
		for ri := range runs {
			if heads[ri] >= len(runs[ri]) {
				continue
			}
			if best == -1 || less(runs[ri][heads[ri]], runs[best][heads[best]]) {
				best = ri
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
}

// joinTagged carries one joined record together with the coordinates that
// define the in-memory join's emission order: j is the right record's index,
// i the left record's global position. Sorting the external join's output
// stably by (j, i) reproduces the in-memory order exactly.
type joinTagged[K comparable, V, W any] struct {
	j, i int
	out  Pair[K, Tuple2[V, W]]
}

// externalJoin is the over-budget path of Join: the left side is processed in
// budget-sized chunks, each spilled through the overflow tier (charging
// virtual disk time) and probed against the full right side; the tagged
// matches are then re-sorted into the in-memory join's (right index, left
// position) order. Output is identical to the in-memory build-and-probe join.
func externalJoin[K comparable, V, W any](tc *cluster.TaskContext, cl *cluster.Cluster, detail string,
	left []Pair[K, V], right []Pair[K, W], leftBytesPerRecord int64) []Pair[K, Tuple2[V, W]] {
	chunk := int(cl.ExecutorMemoryBytes() / leftBytesPerRecord)
	if chunk < 1 {
		chunk = 1
	}
	codec := cluster.GobCodec[[]Pair[K, V]]()
	var tagged []joinTagged[K, V, W]
	type post struct {
		i int
		v V
	}
	for lo := 0; lo < len(left); lo += chunk {
		hi := lo + chunk
		if hi > len(left) {
			hi = len(left)
		}
		part := left[lo:hi]
		if back, ok := spillRoundTrip(tc, cl, codec, part,
			fmt.Sprintf("%s left chunk %d", detail, lo/chunk)); ok {
			part = back.([]Pair[K, V])
		}
		byKey := make(map[K][]post, len(part))
		for idx, kv := range part {
			byKey[kv.Key] = append(byKey[kv.Key], post{i: lo + idx, v: kv.Value})
		}
		for j, kw := range right {
			for _, m := range byKey[kw.Key] {
				tagged = append(tagged, joinTagged[K, V, W]{j: j, i: m.i,
					out: Pair[K, Tuple2[V, W]]{Key: kw.Key, Value: Tuple2[V, W]{A: m.v, B: kw.Value}}})
			}
		}
	}
	sort.SliceStable(tagged, func(a, b int) bool {
		if tagged[a].j != tagged[b].j {
			return tagged[a].j < tagged[b].j
		}
		return tagged[a].i < tagged[b].i
	})
	out := make([]Pair[K, Tuple2[V, W]], len(tagged))
	for i, t := range tagged {
		out[i] = t.out
	}
	return out
}
