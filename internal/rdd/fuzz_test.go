package rdd

import (
	"hash/fnv"
	"testing"
)

// FuzzHashKey fuzzes the shuffle key hasher across every supported key kind.
// Invariants, for any input:
//
//   - the derived bucket is always in [0, numPartitions);
//   - hashing is stable: the same key hashes identically across calls;
//   - every integer width rides the splitmix64 fast path and agrees with
//     the 64-bit hash of the same numeric value (two's-complement
//     sign/zero extension), which pins the uint8/uint16 fast-path fix;
//   - the inlined string fast path agrees byte-for-byte with the stdlib
//     hash/fnv FNV-1a digest, which pins the allocation-free string loop.
//
// The committed corpus under testdata/fuzz/FuzzHashKey seeds boundary
// values (zero, sign bits, width maxima) and string keys.
func FuzzHashKey(f *testing.F) {
	f.Add(uint64(0), "", uint16(1))
	f.Add(uint64(255), "aspirin", uint16(7))
	f.Add(uint64(1)<<63, "ADR report", uint16(64))
	f.Add(^uint64(0), "dizziness", uint16(1024))
	f.Fuzz(func(t *testing.T, x uint64, s string, np uint16) {
		numPartitions := int(np%1024) + 1
		keys := []any{
			int(x), int8(x), int16(x), int32(x), int64(x),
			uint(x), uint8(x), uint16(x), uint32(x), x,
			s, x%2 == 0,
		}
		for _, k := range keys {
			h := hashKey(k)
			if again := hashKey(k); again != h {
				t.Errorf("hashKey(%T %v) unstable: %d then %d", k, k, h, again)
			}
			bucket := int(h % uint64(numPartitions))
			if bucket < 0 || bucket >= numPartitions {
				t.Errorf("hashKey(%T %v) bucket %d outside [0,%d)", k, k, bucket, numPartitions)
			}
		}
		// Width agreement: a narrow integer key must hash like the int64 /
		// uint64 carrying the same numeric value.
		signed := []struct {
			name string
			got  uint64
			wide int64
		}{
			{"int8", hashKey(int8(x)), int64(int8(x))},
			{"int16", hashKey(int16(x)), int64(int16(x))},
			{"int32", hashKey(int32(x)), int64(int32(x))},
			{"int", hashKey(int(x)), int64(int(x))},
		}
		for _, c := range signed {
			if want := hashKey(c.wide); c.got != want {
				t.Errorf("hashKey(%s %d) = %d, want int64-consistent %d", c.name, c.wide, c.got, want)
			}
		}
		unsigned := []struct {
			name string
			got  uint64
			wide uint64
		}{
			{"uint8", hashKey(uint8(x)), uint64(uint8(x))},
			{"uint16", hashKey(uint16(x)), uint64(uint16(x))},
			{"uint32", hashKey(uint32(x)), uint64(uint32(x))},
			{"uint", hashKey(uint(x)), uint64(uint(x))},
		}
		for _, c := range unsigned {
			if want := hashKey(c.wide); c.got != want {
				t.Errorf("hashKey(%s %d) = %d, want uint64-consistent %d", c.name, c.wide, c.got, want)
			}
		}
		// String stability across releases: the inlined loop must equal
		// the stdlib FNV-1a digest for arbitrary (including invalid-UTF-8)
		// byte content.
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := hashKey(s), h.Sum64(); got != want {
			t.Errorf("hashKey(%q) = %d, want stdlib FNV-1a %d", s, got, want)
		}
	})
}
