package rdd

import (
	"fmt"

	"adrdedup/internal/cluster"
)

// Option wraps an optional value for outer joins (Go has no built-in
// optional; nil pointers don't compose with value types).
type Option[T any] struct {
	Value T
	OK    bool
}

// Some wraps a present value.
func Some[T any](v T) Option[T] { return Option[T]{Value: v, OK: true} }

// None is the absent value.
func None[T any]() Option[T] { return Option[T]{} }

// LeftOuterJoin joins two keyed RDDs keeping every left record: right values
// are wrapped in an Option that is empty when the key has no match.
func LeftOuterJoin[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], numPartitions int) *RDD[Pair[K, Tuple2[V, Option[W]]]] {
	if a.ctx != b.ctx {
		panic("rdd: LeftOuterJoin across contexts")
	}
	if numPartitions <= 0 {
		numPartitions = a.ctx.parallelism
	}
	sa := partitionByOpt(a, numPartitions, false)
	sb := partitionByOpt(b, numPartitions, false)
	prepare := append(append([]func() error{}, sa.prepare...), sb.prepare...)
	out := newRDD(a.ctx, fmt.Sprintf("leftJoin(%s,%s)", a.name, b.name), numPartitions,
		func(tc *cluster.TaskContext, p int) ([]Pair[K, Tuple2[V, Option[W]]], error) {
			left, err := sa.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			right, err := sb.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			tc.SetWorkingSetBytes(int64(len(left))*sa.bytesPerRecord +
				int64(len(right))*sb.bytesPerRecord)
			byKey := make(map[K][]W, len(right))
			for _, kw := range right {
				byKey[kw.Key] = append(byKey[kw.Key], kw.Value)
			}
			var out []Pair[K, Tuple2[V, Option[W]]]
			for _, kv := range left {
				ws := byKey[kv.Key]
				if len(ws) == 0 {
					out = append(out, Pair[K, Tuple2[V, Option[W]]]{
						Key:   kv.Key,
						Value: Tuple2[V, Option[W]]{A: kv.Value, B: None[W]()},
					})
					continue
				}
				for _, w := range ws {
					out = append(out, Pair[K, Tuple2[V, Option[W]]]{
						Key:   kv.Key,
						Value: Tuple2[V, Option[W]]{A: kv.Value, B: Some(w)},
					})
				}
			}
			return out, nil
		}, prepare)
	out.hashPartitioned = true
	return out
}

// SubtractByKey keeps the left records whose keys do not appear on the
// right.
func SubtractByKey[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], numPartitions int) *RDD[Pair[K, V]] {
	if a.ctx != b.ctx {
		panic("rdd: SubtractByKey across contexts")
	}
	if numPartitions <= 0 {
		numPartitions = a.ctx.parallelism
	}
	sa := partitionByOpt(a, numPartitions, false)
	sb := partitionByOpt(b, numPartitions, false)
	prepare := append(append([]func() error{}, sa.prepare...), sb.prepare...)
	out := newRDD(a.ctx, fmt.Sprintf("subtract(%s,%s)", a.name, b.name), numPartitions,
		func(tc *cluster.TaskContext, p int) ([]Pair[K, V], error) {
			left, err := sa.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			right, err := sb.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			tc.SetWorkingSetBytes(int64(len(left))*sa.bytesPerRecord +
				int64(len(right))*sb.bytesPerRecord)
			drop := make(map[K]struct{}, len(right))
			for _, kw := range right {
				drop[kw.Key] = struct{}{}
			}
			out := make([]Pair[K, V], 0, len(left))
			for _, kv := range left {
				if _, gone := drop[kv.Key]; !gone {
					out = append(out, kv)
				}
			}
			return out, nil
		}, prepare)
	out.hashPartitioned = true
	return out
}

// Lookup returns every value stored under the key (an action).
func Lookup[K comparable, V any](r *RDD[Pair[K, V]], key K) ([]V, error) {
	parts, err := RunJob(r, r.lineageName()+".lookup", func(_ *cluster.TaskContext, _ int, data []Pair[K, V]) ([]V, error) {
		var out []V
		for _, kv := range data {
			if kv.Key == key {
				out = append(out, kv.Value)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var out []V
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Min returns the smallest element under less, or ErrEmpty.
func Min[T any](r *RDD[T], less func(a, b T) bool) (T, error) {
	return Reduce(r, func(a, b T) T {
		if less(b, a) {
			return b
		}
		return a
	})
}

// Max returns the largest element under less, or ErrEmpty.
func Max[T any](r *RDD[T], less func(a, b T) bool) (T, error) {
	return Reduce(r, func(a, b T) T {
		if less(a, b) {
			return b
		}
		return a
	})
}

// SumFloat64 sums a numeric RDD; an empty dataset sums to zero.
func SumFloat64(r *RDD[float64]) (float64, error) {
	return Aggregate(r, func() float64 { return 0 },
		func(acc, v float64) float64 { return acc + v },
		func(a, b float64) float64 { return a + b })
}
