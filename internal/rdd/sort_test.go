package rdd

import (
	"adrdedup/internal/cluster"

	"math/rand"
	"sort"
	"testing"
)

func clusterNew(failureRate float64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Executors: 4, FailureRate: failureRate, MaxTaskRetries: 40, Seed: 31,
	})
}

func TestSortBySmall(t *testing.T) {
	ctx := testCtx()
	data := []int{9, 3, 7, 1, 8, 2, 6, 4, 5, 0}
	got, err := SortBy(Parallelize(ctx, data, 3), func(a, b int) bool { return a < b }, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("len = %d", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Errorf("not sorted: %v", got)
	}
}

func TestSortByLargeRandom(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	sorted := SortBy(Parallelize(ctx, data, 8), func(a, b float64) bool { return a < b }, 6)
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("len = %d, want %d", len(got), len(data))
	}
	if !sort.Float64sAreSorted(got) {
		t.Error("not globally sorted")
	}
	// Range partitioning should spread records across partitions, not
	// funnel everything into one.
	counts, err := RunJob(sorted, "counts", func(_ *cluster.TaskContext, _ int, in []float64) (int, error) {
		return len(in), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > len(data)*2/3 {
		t.Errorf("one partition holds %d of %d records; range partitioning degenerate", max, len(data))
	}
}

func TestSortByDescending(t *testing.T) {
	ctx := testCtx()
	data := []string{"pear", "apple", "fig", "date", "cherry"}
	got, err := SortBy(Parallelize(ctx, data, 2), func(a, b string) bool { return a > b }, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Errorf("not descending: %v", got)
		}
	}
}

func TestSortByEmptyAndSingle(t *testing.T) {
	ctx := testCtx()
	empty, err := SortBy(Parallelize(ctx, []int(nil), 1), func(a, b int) bool { return a < b }, 3).Collect()
	if err != nil || len(empty) != 0 {
		t.Errorf("empty sort: %v, %v", empty, err)
	}
	one, err := SortBy(Parallelize(ctx, []int{42}, 1), func(a, b int) bool { return a < b }, 3).Collect()
	if err != nil || len(one) != 1 || one[0] != 42 {
		t.Errorf("single sort: %v, %v", one, err)
	}
}

func TestSortByUnderFaultInjection(t *testing.T) {
	run := func(rate float64) []int {
		ctx := NewContext(clusterNew(rate))
		data := make([]int, 3000)
		for i := range data {
			data[i] = (i * 7919) % 3001
		}
		got, err := SortBy(Parallelize(ctx, data, 6), func(a, b int) bool { return a < b }, 5).Collect()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	clean := run(0)
	faulty := run(0.25)
	if len(clean) != len(faulty) {
		t.Fatalf("lengths differ: %d vs %d", len(clean), len(faulty))
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("fault injection changed sorted output at %d", i)
		}
	}
	if !sort.IntsAreSorted(clean) {
		t.Error("not sorted")
	}
}

func TestSortByDuplicateValues(t *testing.T) {
	ctx := testCtx()
	data := make([]int, 500)
	for i := range data {
		data[i] = i % 5
	}
	got, err := SortBy(Parallelize(ctx, data, 4), func(a, b int) bool { return a < b }, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 || !sort.IntsAreSorted(got) {
		t.Errorf("duplicate-heavy sort failed: len=%d", len(got))
	}
}
