package rdd

import (
	"reflect"
	"sort"
	"testing"

	"adrdedup/internal/cluster"
)

// TestCacheServesFromBlockStore verifies that a cached RDD computes each
// partition once and serves later jobs from the block store.
func TestCacheServesFromBlockStore(t *testing.T) {
	ctx := testCtx()
	computes := new(sortedSink)
	r := Map(Parallelize(ctx, ints(40), 4), func(x int) int {
		computes.add(1)
		return x * x
	}).Cache()

	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	first := len(computes.vs)
	if first != 40 {
		t.Fatalf("first pass computed %d elements, want 40", first)
	}
	if _, err := r.Count(); err != nil {
		t.Fatal(err)
	}
	if len(computes.vs) != first {
		t.Errorf("second job recomputed a cached RDD (%d extra computes)", len(computes.vs)-first)
	}
	if hits := ctx.Cluster().Metrics().BlockHits.Load(); hits < 4 {
		t.Errorf("block hits = %d, want >= 4", hits)
	}
}

// TestEvictionRecomputesFromLineage fills the cache beyond capacity and
// checks that evicted partitions recompute transparently with identical
// results — Spark's core fault-tolerance property.
func TestEvictionRecomputesFromLineage(t *testing.T) {
	cl := cluster.New(cluster.Config{Executors: 1, MemoryPerExecutorMB: 1})
	ctx := NewContext(cl)
	data := ints(10000)
	// ~64 bytes/record estimate x 10k = 640KB per cached copy; three
	// cached RDDs exceed the 1MB budget and force evictions.
	a := Map(Parallelize(ctx, data, 4), func(x int) int { return x + 1 }).Cache()
	b := Map(Parallelize(ctx, data, 4), func(x int) int { return x + 2 }).Cache()
	c := Map(Parallelize(ctx, data, 4), func(x int) int { return x + 3 }).Cache()

	for range [3]int{} {
		for _, r := range []*RDD[int]{a, b, c} {
			sum, err := Reduce(r, func(x, y int) int { return x + y })
			if err != nil {
				t.Fatal(err)
			}
			if sum <= 0 {
				t.Fatalf("bad sum %d", sum)
			}
		}
	}
	m := cl.Metrics().Snapshot()
	if m.BlockEvictions == 0 {
		t.Error("expected evictions under 1MB budget")
	}
	if m.BlockRecomputes == 0 {
		t.Error("expected lineage recomputations after eviction")
	}
	// Results must still be exact.
	got, err := a.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("recomputed value wrong at %d: %d", i, v)
		}
	}
}

// TestUnpersistReleasesBlocks checks Unpersist removes cached partitions.
func TestUnpersistReleasesBlocks(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(100), 4).Cache()
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if ctx.Cluster().Blocks().Len() == 0 {
		t.Fatal("nothing cached")
	}
	r.Unpersist()
	if n := ctx.Cluster().Blocks().Len(); n != 0 {
		t.Errorf("%d blocks remain after Unpersist", n)
	}
	if r.IsCached() {
		t.Error("IsCached true after Unpersist")
	}
}

// TestFaultInjectionDoesNotChangeResults runs a multi-stage pipeline with
// aggressive fault injection and verifies byte-identical results with a
// fault-free run.
func TestFaultInjectionDoesNotChangeResults(t *testing.T) {
	run := func(failureRate float64) []Pair[int, int] {
		cl := cluster.New(cluster.Config{
			Executors: 4, FailureRate: failureRate, MaxTaskRetries: 50, Seed: 13,
		})
		ctx := NewContext(cl)
		base := Parallelize(ctx, ints(1000), 8)
		keyed := Map(base, func(x int) Pair[int, int] { return KV(x%17, x) })
		summed := ReduceByKey(keyed, func(a, b int) int { return a + b }, 5)
		got, err := summed.Collect()
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
		return got
	}
	clean := run(0)
	faulty := run(0.3)
	if !reflect.DeepEqual(clean, faulty) {
		t.Errorf("fault injection changed results:\nclean  = %v\nfaulty = %v", clean, faulty)
	}
}

// TestShuffleChainAcrossStages exercises a three-shuffle lineage:
// partitionBy -> reduceByKey -> join, ensuring stage preparation runs each
// map stage exactly once even when the RDD graph is reused.
func TestShuffleChainAcrossStages(t *testing.T) {
	ctx := testCtx()
	base := Parallelize(ctx, kvPairs(200, 20), 6)
	counts := ReduceByKey(base, func(a, b int) int { return a + b }, 4)
	squares := MapValues(counts, func(v int) int { return v * v })
	joined := Join(counts, squares, 4)

	got, err := joined.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("join rows = %d, want 20", len(got))
	}
	for _, kv := range got {
		if kv.Value.B != kv.Value.A*kv.Value.A {
			t.Errorf("key %d: %d squared != %d", kv.Key, kv.Value.A, kv.Value.B)
		}
	}
	stagesBefore := ctx.Cluster().Metrics().StagesRun.Load()
	// Re-running an action must not re-run the shuffle map stages.
	if _, err := joined.Count(); err != nil {
		t.Fatal(err)
	}
	stagesAfter := ctx.Cluster().Metrics().StagesRun.Load()
	if stagesAfter != stagesBefore+1 {
		t.Errorf("re-count ran %d stages, want exactly 1 (shuffles must not re-run)",
			stagesAfter-stagesBefore)
	}
}

// TestShuffleByteAccounting verifies the shuffle service counts the bytes
// that the virtual network model charges for.
func TestShuffleByteAccounting(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(100, 10), 4).WithBytesPerRecord(100)
	if _, err := PartitionBy(r, 4).Collect(); err != nil {
		t.Fatal(err)
	}
	m := ctx.Cluster().Metrics().Snapshot()
	if m.ShuffleRecordsWritten != 100 {
		t.Errorf("shuffle records = %d, want 100", m.ShuffleRecordsWritten)
	}
	if m.ShuffleBytesWritten != 100*100 {
		t.Errorf("shuffle bytes = %d, want 10000", m.ShuffleBytesWritten)
	}
	if m.ShuffleBytesRead != m.ShuffleBytesWritten {
		t.Errorf("read %d != written %d", m.ShuffleBytesRead, m.ShuffleBytesWritten)
	}
}

// TestWordCount is the canonical Spark smoke test end-to-end.
func TestWordCount(t *testing.T) {
	ctx := testCtx()
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	words := FlatMap(Parallelize(ctx, lines, 2), func(l string) []string {
		var out []string
		start := -1
		for i := 0; i <= len(l); i++ {
			if i == len(l) || l[i] == ' ' {
				if start >= 0 {
					out = append(out, l[start:i])
					start = -1
				}
			} else if start < 0 {
				start = i
			}
		}
		return out
	})
	counts, err := ReduceByKey(
		Map(words, func(w string) Pair[string, int] { return KV(w, 1) }),
		func(a, b int) int { return a + b }, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	if len(counts) != len(want) {
		t.Fatalf("got %d words, want %d", len(counts), len(want))
	}
	for _, kv := range counts {
		if want[kv.Key] != kv.Value {
			t.Errorf("%q = %d, want %d", kv.Key, kv.Value, want[kv.Key])
		}
	}
}
