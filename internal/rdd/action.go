package rdd

import (
	"container/heap"
	"errors"

	"adrdedup/internal/cluster"
)

// ErrEmpty is returned by actions that require a non-empty dataset.
var ErrEmpty = errors.New("rdd: empty dataset")

// Collect materializes the whole dataset on the driver, in partition order.
func (r *RDD[T]) Collect() ([]T, error) {
	parts, err := RunJob(r, r.lineageName()+".collect", func(_ *cluster.TaskContext, _ int, data []T) ([]T, error) {
		return data, nil
	})
	if err != nil {
		return nil, err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the number of elements.
func (r *RDD[T]) Count() (int64, error) {
	parts, err := RunJob(r, r.lineageName()+".count", func(_ *cluster.TaskContext, _ int, data []T) (int64, error) {
		return int64(len(data)), nil
	})
	if err != nil {
		return 0, err
	}
	var n int64
	for _, c := range parts {
		n += c
	}
	return n, nil
}

// Reduce combines all elements with f. It returns ErrEmpty on an empty
// dataset. f must be associative and commutative, as in Spark.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	type partial struct {
		v  T
		ok bool
	}
	parts, err := RunJob(r, r.lineageName()+".reduce", func(_ *cluster.TaskContext, _ int, data []T) (partial, error) {
		if len(data) == 0 {
			return partial{}, nil
		}
		acc := data[0]
		for _, v := range data[1:] {
			acc = f(acc, v)
		}
		return partial{v: acc, ok: true}, nil
	})
	var zero T
	if err != nil {
		return zero, err
	}
	var acc T
	found := false
	for _, p := range parts {
		if !p.ok {
			continue
		}
		if !found {
			acc = p.v
			found = true
		} else {
			acc = f(acc, p.v)
		}
	}
	if !found {
		return zero, ErrEmpty
	}
	return acc, nil
}

// Aggregate folds every element into an accumulator: seqOp within partitions,
// combOp across them. zero constructs a fresh accumulator.
func Aggregate[T, U any](r *RDD[T], zero func() U, seqOp func(U, T) U, combOp func(U, U) U) (U, error) {
	parts, err := RunJob(r, r.lineageName()+".aggregate", func(_ *cluster.TaskContext, _ int, data []T) (U, error) {
		acc := zero()
		for _, v := range data {
			acc = seqOp(acc, v)
		}
		return acc, nil
	})
	if err != nil {
		var z U
		return z, err
	}
	acc := zero()
	for _, p := range parts {
		acc = combOp(acc, p)
	}
	return acc, nil
}

// Take returns the first n elements in partition order. Note: unlike Spark's
// incremental take, this materializes every partition (the simulated cluster
// runs whole stages); it is an action for tests and small previews.
func (r *RDD[T]) Take(n int) ([]T, error) {
	all, err := r.Collect()
	if err != nil {
		return nil, err
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n:n], nil
}

// First returns the first element, or ErrEmpty.
func (r *RDD[T]) First() (T, error) {
	var zero T
	got, err := r.Take(1)
	if err != nil {
		return zero, err
	}
	if len(got) == 0 {
		return zero, ErrEmpty
	}
	return got[0], nil
}

// Foreach applies f to every element for its side effects. f runs inside
// tasks and must be safe for concurrent use and idempotent under task retry.
func (r *RDD[T]) Foreach(f func(T)) error {
	_, err := RunJob(r, r.lineageName()+".foreach", func(_ *cluster.TaskContext, _ int, data []T) (struct{}, error) {
		for _, v := range data {
			f(v)
		}
		return struct{}{}, nil
	})
	return err
}

// CountByKey returns a map from key to occurrence count.
func CountByKey[K comparable, V any](r *RDD[Pair[K, V]]) (map[K]int64, error) {
	parts, err := RunJob(r, r.lineageName()+".countByKey", func(_ *cluster.TaskContext, _ int, data []Pair[K, V]) (map[K]int64, error) {
		m := make(map[K]int64)
		for _, kv := range data {
			m[kv.Key]++
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64)
	for _, m := range parts {
		for k, c := range m {
			out[k] += c
		}
	}
	return out, nil
}

// TopK returns the n smallest elements according to less, in ascending
// order. Each partition keeps a bounded heap; the driver merges them. This is
// the primitive the kNN layer uses to keep k nearest neighbors.
func TopK[T any](r *RDD[T], n int, less func(a, b T) bool) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	parts, err := RunJob(r, r.lineageName()+".topK", func(_ *cluster.TaskContext, _ int, data []T) ([]T, error) {
		return BoundedMin(data, n, less), nil
	})
	if err != nil {
		return nil, err
	}
	var merged []T
	for _, p := range parts {
		merged = append(merged, p...)
	}
	return BoundedMin(merged, n, less), nil
}

// BoundedMin returns the n smallest elements of data under less, ascending.
// It is exported for reuse by the kNN packages.
func BoundedMin[T any](data []T, n int, less func(a, b T) bool) []T {
	if n <= 0 || len(data) == 0 {
		return nil
	}
	h := &maxHeap[T]{less: less}
	for _, v := range data {
		if h.Len() < n {
			heap.Push(h, v)
		} else if less(v, h.items[0]) {
			h.items[0] = v
			heap.Fix(h, 0)
		}
	}
	out := make([]T, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(T)
	}
	return out
}

// maxHeap keeps the largest element at the root so it can be displaced by
// smaller candidates (bounded smallest-n selection).
type maxHeap[T any] struct {
	items []T
	less  func(a, b T) bool
}

func (h *maxHeap[T]) Len() int           { return len(h.items) }
func (h *maxHeap[T]) Less(i, j int) bool { return h.less(h.items[j], h.items[i]) }
func (h *maxHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *maxHeap[T]) Push(x any)         { h.items = append(h.items, x.(T)) }
func (h *maxHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
