package rdd

import (
	"reflect"
	"strings"
	"testing"

	"adrdedup/internal/cluster"
)

// withFusion runs the test body with fusion forced on or off, restoring the
// previous setting afterwards. Tests that flip the flag must not be parallel.
func withFusion(t *testing.T, on bool) {
	t.Helper()
	prev := SetFusionEnabled(on)
	t.Cleanup(func() { SetFusionEnabled(prev) })
}

// TestFusedStageNames: a narrow chain collapses into one fused stage whose
// name joins the operators with "+" from the boundary RDD.
func TestFusedStageNames(t *testing.T) {
	withFusion(t, true)
	cl := cluster.New(cluster.Config{Executors: 2})
	ctx := NewContext(cl)

	reports := Parallelize(ctx, []int{1, 2, 3, 4, 5, 6}, 2).SetName("reports")
	chain := Map(Filter(Map(reports, func(v int) int { return v * 2 }),
		func(v int) bool { return v%4 == 0 }),
		func(v int) int { return v + 1 })
	if _, err := chain.Collect(); err != nil {
		t.Fatal(err)
	}

	h := cl.StageHistory()
	last := h[len(h)-1].Name
	if !strings.Contains(last, "reports.map+filter+map") {
		t.Errorf("stage name %q does not carry the fused chain label", last)
	}
	if !strings.Contains(last, "@rdd") {
		t.Errorf("stage name %q lost its lineage tag", last)
	}
}

// TestCacheIsFusionBoundary: caching mid-chain must split fusion there — the
// cached RDD's partitions land in the block store and downstream reads come
// from cache, while results stay identical.
func TestCacheIsFusionBoundary(t *testing.T) {
	withFusion(t, true)
	cl := cluster.New(cluster.Config{Executors: 2})
	ctx := NewContext(cl)

	base := Parallelize(ctx, []int{1, 2, 3, 4, 5, 6, 7, 8}, 2).SetName("base")
	mid := Map(base, func(v int) int { return v * 10 }).Cache()
	tail := Filter(mid, func(v int) bool { return v%20 == 0 })

	want := []int{20, 40, 60, 80}
	got, err := tail.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("first collect = %v, want %v", got, want)
	}

	// The chain label must show a boundary (dot) at the cached RDD, not a
	// fused "+" through it.
	h := cl.StageHistory()
	last := h[len(h)-1].Name
	if !strings.Contains(last, "base.map.filter") {
		t.Errorf("stage name %q should split the chain at the cached RDD", last)
	}

	got2, err := tail.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("second collect = %v, want %v", got2, want)
	}
	if cl.Metrics().BlockHits.Load() == 0 {
		t.Error("second collect did not read the cached boundary partitions")
	}
}

// TestSetNameOverridesFusedLabel: SetName replaces the derived chain label.
func TestSetNameOverridesFusedLabel(t *testing.T) {
	withFusion(t, true)
	cl := cluster.New(cluster.Config{Executors: 2})
	ctx := NewContext(cl)
	r := Map(Parallelize(ctx, []int{1, 2}, 1), func(v int) int { return v }).SetName("renamed")
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	h := cl.StageHistory()
	if last := h[len(h)-1].Name; !strings.Contains(last, "renamed.collect") {
		t.Errorf("stage name %q should use the SetName override", last)
	}
}

// TestMapElementsWithIndex: the fused element-wise indexed map sees the
// correct partition index for every element.
func TestMapElementsWithIndex(t *testing.T) {
	ctx := NewContext(cluster.New(cluster.Config{Executors: 2}))
	r := Parallelize(ctx, []int{10, 20, 30, 40}, 2)
	got, err := MapElementsWithIndex(r, func(p, v int) int { return v + p }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 31, 41} // partition 0: {10,20}, partition 1: {30,40}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

// buildNarrowChain is the 3-operator chain shared by the allocation test and
// BenchmarkNarrowChain.
func buildNarrowChain(ctx *Context, data []int, parts int) *RDD[int] {
	base := Parallelize(ctx, data, parts)
	m1 := Map(base, func(v int) int { return v*3 + 1 })
	f := Filter(m1, func(v int) bool { return v&1 == 0 })
	return Map(f, func(v int) int { return v >> 1 })
}

// TestFusionReducesAllocations pins the PR's acceptance criterion: the fused
// 3-operator chain must allocate at least 30% less than the unfused baseline
// when computing a partition.
func TestFusionReducesAllocations(t *testing.T) {
	data := make([]int, 4096)
	for i := range data {
		data[i] = i
	}
	ctx := NewContext(cluster.New(cluster.Config{Executors: 1}))
	chain := buildNarrowChain(ctx, data, 1)
	tc := &cluster.TaskContext{}

	measure := func(fused bool) float64 {
		prev := SetFusionEnabled(fused)
		defer SetFusionEnabled(prev)
		return testing.AllocsPerRun(20, func() {
			if _, err := chain.compute(tc, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
	unfused := measure(false)
	fused := measure(true)
	t.Logf("allocs/partition: unfused %.1f, fused %.1f", unfused, fused)
	if fused > 0.7*unfused {
		t.Errorf("fusion saves too little: fused %.1f allocs vs unfused %.1f (need >=30%% fewer)",
			fused, unfused)
	}
}

// TestCartesianStreamsThroughFilter: a Cartesian followed by fused narrow
// operators produces the same result as the materializing baseline.
func TestCartesianStreamsThroughFilter(t *testing.T) {
	run := func(fused bool) []int {
		t.Helper()
		prev := SetFusionEnabled(fused)
		defer SetFusionEnabled(prev)
		ctx := NewContext(cluster.New(cluster.Config{Executors: 2}))
		a := Parallelize(ctx, []int{1, 2, 3, 4, 5}, 2)
		b := Parallelize(ctx, []int{10, 20, 30}, 2)
		pairs := Cartesian(a, b)
		kept := Filter(pairs, func(p Tuple2[int, int]) bool { return (p.A+p.B)%2 == 1 })
		sums := Map(kept, func(p Tuple2[int, int]) int { return p.A + p.B })
		got, err := sums.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	fused, unfused := run(true), run(false)
	if !reflect.DeepEqual(fused, unfused) {
		t.Errorf("fused cartesian chain %v != unfused %v", fused, unfused)
	}
	if len(fused) == 0 {
		t.Error("test is vacuous: no pairs survived the filter")
	}
}
