package rdd

import (
	"testing"

	"adrdedup/internal/cluster"
)

// Engine micro-benchmarks for fused narrow-stage execution. Each benchmark
// runs the same operator graph twice — fused and with fusion disabled (the
// pre-fusion materializing baseline, kept behind the SetFusionEnabled flag)
// — and measures partition computation directly, so allocs/op and B/op
// reflect the operator chain itself rather than cluster scheduling noise.
// `make bench-json` snapshots these into BENCH_engine.json.

func benchModes(b *testing.B, run func(b *testing.B)) {
	for _, mode := range []struct {
		name  string
		fused bool
	}{{"fused", true}, {"unfused", false}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := SetFusionEnabled(mode.fused)
			defer SetFusionEnabled(prev)
			run(b)
		})
	}
}

// BenchmarkNarrowChain: a 3-operator map → filter → map chain over one
// 4096-element partition. Unfused, each operator materializes a full
// intermediate slice; fused, the chain collapses into one pass with a
// single pre-sized output allocation.
func BenchmarkNarrowChain(b *testing.B) {
	data := make([]int, 4096)
	for i := range data {
		data[i] = i
	}
	benchModes(b, func(b *testing.B) {
		ctx := NewContext(cluster.New(cluster.Config{Executors: 1}))
		chain := buildNarrowChain(ctx, data, 1)
		tc := &cluster.TaskContext{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := chain.compute(tc, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCartesianFilter: a 256x256 cross product immediately narrowed by
// a selective filter (~1% pass rate), the shape of the paper's candidate
// pair generation feeding the distance-vector stage. Unfused, the full
// 65536-pair slice materializes twice (Cartesian output + Filter's
// allocation); fused, pairs stream through the filter and only survivors
// are stored.
func BenchmarkCartesianFilter(b *testing.B) {
	data := make([]int, 256)
	for i := range data {
		data[i] = i
	}
	benchModes(b, func(b *testing.B) {
		ctx := NewContext(cluster.New(cluster.Config{Executors: 1}))
		left := Parallelize(ctx, data, 1)
		right := Parallelize(ctx, data, 1)
		pairs := Cartesian(left, right)
		kept := Filter(pairs, func(p Tuple2[int, int]) bool { return (p.A*251+p.B)%97 == 0 })
		dists := Map(kept, func(p Tuple2[int, int]) int { return p.A - p.B })
		tc := &cluster.TaskContext{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dists.compute(tc, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJoinPartition: an end-to-end hash join with the shape of the
// candidate-pair join (many values per key on both sides). Per-key
// cardinalities are counted up front so every value slice and the output
// slice allocate exactly once at final size instead of growing from nil
// through the append doubling schedule.
func BenchmarkJoinPartition(b *testing.B) {
	const n, keys = 10_000, 250
	left := make([]Pair[int, int], n)
	right := make([]Pair[int, int], n)
	for i := 0; i < n; i++ {
		left[i] = KV(i%keys, i)
		right[i] = KV((i*7)%keys, -i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewContext(cluster.New(cluster.Config{Executors: 4}))
		joined := Join(Parallelize(ctx, left, 4), Parallelize(ctx, right, 4), 4)
		if _, err := joined.Count(); err != nil {
			b.Fatal(err)
		}
	}
}
