package rdd

import (
	"fmt"
	"sort"
	"sync"

	"adrdedup/internal/cluster"
)

// SortBy totally sorts the dataset under less, like Spark's sortBy: the
// input is sampled to pick numPartitions-1 range boundaries, records are
// shuffled into contiguous ranges, and each partition is sorted locally.
// Collecting the result yields a globally sorted sequence.
func SortBy[T any](r *RDD[T], less func(a, b T) bool, numPartitions int) *RDD[T] {
	if numPartitions <= 0 {
		numPartitions = r.ctx.parallelism
	}

	// Sampling the boundaries is an eager driver-side job, as in Spark
	// (sortBy triggers a sample stage when declared).
	sample, err := Sample(r, 0.1, 17).Collect()
	if err != nil || len(sample) == 0 {
		// Fall back to whole-input bounds only if sampling failed;
		// an empty sample means a tiny input, where one partition is
		// fine.
		numPartitions = 1
	}
	// Stable sorts throughout: with only a partial order from less, an
	// unstable sort makes equal-key output order depend on sort internals.
	// Stability (plus the deterministic fetch order of the shuffle) pins
	// equal keys to their input order, run after run.
	sort.SliceStable(sample, func(i, j int) bool { return less(sample[i], sample[j]) })
	bounds := make([]T, 0, numPartitions-1)
	for i := 1; i < numPartitions; i++ {
		idx := i * len(sample) / numPartitions
		if idx < len(sample) {
			bounds = append(bounds, sample[idx])
		}
	}
	rangeOf := func(v T) int {
		// First range whose bound exceeds v; linear scan is fine for
		// tens of partitions.
		for i, b := range bounds {
			if less(v, b) {
				return i
			}
		}
		return len(bounds)
	}

	keyed := Map(r, func(v T) Pair[int, T] { return KV(rangeOf(v), v) }).SetName(r.name + ".rangeKeys")
	// PartitionBy hashes keys; for range partitioning the partition must
	// equal the key itself, so shuffle manually through the service.
	ctx := r.ctx
	shID := ctx.cl.Shuffles().Register()
	ctx.cl.Shuffles().SetCodec(shID, cluster.GobCodec[[]T]())
	parts := len(bounds) + 1
	// Adaptive coalescing merges only *consecutive* ranges, so a coalesced
	// sort output is still globally ordered across partitions. The plan is
	// written once inside runMapStage (nil = run as declared).
	var plan [][]int
	prepareParent := keyed.prepare
	// mapOutput streams the range-keying chain of one parent partition
	// straight into the shuffle buckets (no intermediate keyed slice),
	// under an explicit map-task identity so lost-output recomputation
	// reproduces the original block keys.
	mapOutput := func(tc *cluster.TaskContext, part int) error {
		buckets := make([][]T, parts)
		err := keyed.streamInto(tc, part, nil, func(kv Pair[int, T]) error {
			buckets[kv.Key] = append(buckets[kv.Key], kv.Value)
			return nil
		})
		if err != nil {
			return err
		}
		for b, bucket := range buckets {
			if len(bucket) == 0 {
				continue
			}
			tc.WriteShuffleAs(shID, b, part, bucket,
				int64(len(bucket)), int64(len(bucket))*r.bytesPerRecord)
		}
		return nil
	}
	ctx.cl.Shuffles().SetRecompute(shID, func(lost []int) error {
		_, err := ctx.cl.RunRecoveryStage(
			fmt.Sprintf("%s.sortShuffle#%d.recompute@rdd%d", r.name, shID, r.id),
			len(lost), func(tc *cluster.TaskContext) error {
				return mapOutput(tc, lost[tc.Task()])
			})
		return err
	})
	runMapStage := onceErrFunc(func() error {
		for _, p := range prepareParent {
			if err := p(); err != nil {
				return err
			}
		}
		stage := fmt.Sprintf("%s.sortShuffle#%d@rdd%d", r.lineageName(), shID, r.id)
		_, err := ctx.cl.RunStage(stage, keyed.partitions(),
			func(tc *cluster.TaskContext) error {
				return mapOutput(tc, tc.Task())
			})
		if err == nil {
			ctx.cl.Shuffles().MarkDone(shID)
			if ctx.cl.CoalescingEnabled() {
				plan = ctx.cl.CoalescePlan(shID, parts, stage)
			}
		}
		return err
	})

	out := newRDD(ctx, r.name+".sortBy", parts,
		func(tc *cluster.TaskContext, p int) ([]T, error) {
			group := []int{p}
			if plan != nil {
				group = plan[p]
			}
			var out []T
			for _, q := range group {
				blocks, err := tc.FetchShuffle(shID, q)
				if err != nil {
					return nil, err
				}
				for _, b := range blocks {
					out = append(out, b.([]T)...)
				}
			}
			// In memory when the range fits the executor budget; a bounded-run
			// external merge otherwise — output-identical either way.
			out = externalSortStable(tc, ctx.cl, fmt.Sprintf("sortBy p%d", p),
				out, r.bytesPerRecord, less)
			return out, nil
		}, []func() error{runMapStage})
	out.parts = func() int {
		if plan != nil {
			return len(plan)
		}
		return parts
	}
	return out
}

// onceErrFunc wraps f so it runs at most once (goroutine-safe) and replays
// its error to later callers.
func onceErrFunc(f func() error) func() error {
	var once sync.Once
	var err error
	return func() error {
		once.Do(func() { err = f() })
		return err
	}
}
