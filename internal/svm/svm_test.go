package svm

import (
	"math"
	"math/rand"
	"testing"
)

// linearlySeparable builds points labelled by the sign of x0 + x1 - 1.
func linearlySeparable(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, 0, n)
	labels := make([]int, 0, n)
	for len(data) < n {
		x := []float64{rng.Float64() * 2, rng.Float64() * 2}
		switch {
		case x[0]+x[1] > 1.2:
			data = append(data, x)
			labels = append(labels, 1)
		case x[0]+x[1] < 0.8:
			data = append(data, x)
			labels = append(labels, -1)
			// Points inside the margin band are resampled.
		}
	}
	return data, labels
}

func TestTrainSeparable(t *testing.T) {
	data, labels := linearlySeparable(600, 1)
	m, err := Train(data, labels, Options{Epochs: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, v := range data {
		if m.Predict(v) == labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(data))
	if acc < 0.97 {
		t.Errorf("training accuracy = %.3f, want >= 0.97 on separable data", acc)
	}
}

func TestDecisionMonotoneAlongNormal(t *testing.T) {
	data, labels := linearlySeparable(400, 3)
	m, err := Train(data, labels, Options{Epochs: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lo := m.Decision([]float64{0, 0})
	hi := m.Decision([]float64{2, 2})
	if lo >= hi {
		t.Errorf("decision not increasing toward positive side: %v vs %v", lo, hi)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty data must be rejected")
	}
	if _, err := Train([][]float64{{1}}, []int{1, -1}, Options{}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{1, 1}, Options{}); err == nil {
		t.Error("single-class data must be rejected")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{1, 0}, Options{}); err == nil {
		t.Error("label 0 must be rejected")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{1, -1}, Options{}); err == nil {
		t.Error("ragged dims must be rejected")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	data, labels := linearlySeparable(300, 5)
	a, err := Train(data, labels, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, labels, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.W {
		if a.W[d] != b.W[d] {
			t.Fatal("same seed produced different weights")
		}
	}
	if a.B != b.B {
		t.Fatal("same seed produced different bias")
	}
}

func TestStandardizationHandlesConstantFeature(t *testing.T) {
	data := [][]float64{{0, 1}, {1, 1}, {0.2, 1}, {0.9, 1}}
	labels := []int{-1, 1, -1, 1}
	m, err := Train(data, labels, Options{Epochs: 50, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data {
		if d := m.Decision(v); math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("decision not finite: %v", d)
		}
	}
}

func TestDecisionBatch(t *testing.T) {
	data, labels := linearlySeparable(200, 9)
	m, err := Train(data, labels, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.DecisionBatch(data[:10])
	for i, v := range data[:10] {
		if batch[i] != m.Decision(v) {
			t.Fatal("batch decision differs from single decision")
		}
	}
}

func TestPositiveWeightShiftsBoundary(t *testing.T) {
	// Heavily imbalanced data: upweighting positives must not reduce, and
	// typically raises, recall at threshold zero.
	rng := rand.New(rand.NewSource(11))
	var data [][]float64
	var labels []int
	for i := 0; i < 20; i++ {
		data = append(data, []float64{0.1 + rng.NormFloat64()*0.05})
		labels = append(labels, 1)
	}
	for i := 0; i < 1000; i++ {
		data = append(data, []float64{0.5 + rng.Float64()*0.5})
		labels = append(labels, -1)
	}
	recallAt := func(w float64) float64 {
		m, err := Train(data, labels, Options{Epochs: 20, Seed: 12, PositiveWeight: w})
		if err != nil {
			t.Fatal(err)
		}
		tp := 0
		for i, v := range data {
			if labels[i] == 1 && m.Predict(v) == 1 {
				tp++
			}
		}
		return float64(tp) / 20
	}
	if recallAt(50) < recallAt(1) {
		t.Error("positive weighting reduced recall on imbalanced data")
	}
}

func TestTrainClustered(t *testing.T) {
	data, labels := linearlySeparable(800, 13)
	m, err := TrainClustered(data, labels, 8, Options{Epochs: 20, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, v := range data {
		if m.Predict(v) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.9 {
		t.Errorf("clustered-SVM accuracy = %.3f", acc)
	}
	if _, err := TrainClustered(data, labels, 0, Options{}); err == nil {
		t.Error("zero clusters must be rejected")
	}
	if _, err := TrainClustered(nil, nil, 4, Options{}); err == nil {
		t.Error("empty data must be rejected")
	}
}
