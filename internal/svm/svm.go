// Package svm implements the linear soft-margin SVM baseline the paper
// compares Fast kNN against (§5.2.1), trained with the Pegasos stochastic
// sub-gradient algorithm (Shalev-Shwartz et al.), plus the "SVM clustering"
// variant of §5.2.2 that resamples the training set so report pairs in small
// clusters are represented.
//
// Inputs are pair distance vectors; labels are +1 (duplicate) and -1. The
// decision value w·x + b ranks pairs for precision-recall evaluation.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"adrdedup/internal/kmeans"
	"adrdedup/internal/vecmath"
)

// Options configures training. The zero value uses the noted defaults.
type Options struct {
	// Lambda is the Pegasos regularization strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the data (default 20, enough
	// for Pegasos to converge on the pair-vector scale this library
	// works at — the baseline is given a fair fit).
	Epochs int
	// Seed drives example sampling.
	Seed int64
	// PositiveWeight scales the loss of positive examples; 1 leaves the
	// natural imbalance in place (the paper's SVM baseline does not
	// reweight, which is part of why it struggles). Default 1.
	PositiveWeight float64
}

func (o Options) withDefaults() Options {
	if o.Lambda <= 0 {
		o.Lambda = 1e-4
	}
	if o.Epochs <= 0 {
		o.Epochs = 20
	}
	if o.PositiveWeight <= 0 {
		o.PositiveWeight = 1
	}
	return o
}

// Model is a trained linear SVM.
type Model struct {
	// W and B define the decision function w·x + b on standardized
	// features.
	W []float64
	B float64

	mean []float64
	std  []float64
}

// Train fits a linear SVM with Pegasos. It returns an error on empty or
// single-class data (a hyperplane needs both classes).
func Train(data [][]float64, labels []int, opts Options) (*Model, error) {
	if len(data) == 0 {
		return nil, errors.New("svm: no training data")
	}
	if len(data) != len(labels) {
		return nil, fmt.Errorf("svm: %d vectors but %d labels", len(data), len(labels))
	}
	dim := len(data[0])
	pos, neg := 0, 0
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("svm: vector %d has dim %d, want %d", i, len(v), dim)
		}
		switch labels[i] {
		case +1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("svm: label %d at %d, want +1 or -1", labels[i], i)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("svm: need both classes (pos=%d neg=%d)", pos, neg)
	}
	opts = opts.withDefaults()

	m := &Model{W: make([]float64, dim), mean: make([]float64, dim), std: make([]float64, dim)}
	m.fitScaler(data)

	// Pegasos on the augmented representation [x; 1] so the bias learns
	// with the weights.
	w := make([]float64, dim+1)
	rng := rand.New(rand.NewSource(opts.Seed))
	lambda := opts.Lambda
	t := 0
	x := make([]float64, dim+1)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for iter := 0; iter < len(data); iter++ {
			t++
			i := rng.Intn(len(data))
			m.standardizeInto(data[i], x)
			x[dim] = 1
			y := float64(labels[i])
			weight := 1.0
			if labels[i] > 0 {
				weight = opts.PositiveWeight
			}
			eta := 1 / (lambda * float64(t))
			margin := y * vecmath.Dot(w, x)
			for d := range w {
				w[d] *= 1 - eta*lambda
			}
			if margin < 1 {
				for d := range w {
					w[d] += eta * weight * y * x[d]
				}
			}
			// Pegasos projection onto the 1/sqrt(lambda) ball.
			if norm := vecmath.Norm(w); norm > 1/math.Sqrt(lambda) {
				vecmath.Scale(w, 1/(norm*math.Sqrt(lambda)))
			}
		}
	}
	copy(m.W, w[:dim])
	m.B = w[dim]
	return m, nil
}

// Decision returns the signed distance proxy w·x + b for a raw (unscaled)
// vector; larger means more duplicate-like.
func (m *Model) Decision(v []float64) float64 {
	s := m.B
	for d, x := range v {
		s += m.W[d] * (x - m.mean[d]) / m.std[d]
	}
	return s
}

// Predict thresholds the decision value at zero.
func (m *Model) Predict(v []float64) int {
	if m.Decision(v) >= 0 {
		return 1
	}
	return -1
}

// DecisionBatch scores many vectors.
func (m *Model) DecisionBatch(vs [][]float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = m.Decision(v)
	}
	return out
}

func (m *Model) fitScaler(data [][]float64) {
	n := float64(len(data))
	for _, v := range data {
		vecmath.Add(m.mean, v)
	}
	vecmath.Scale(m.mean, 1/n)
	for _, v := range data {
		for d := range v {
			diff := v[d] - m.mean[d]
			m.std[d] += diff * diff
		}
	}
	for d := range m.std {
		m.std[d] = math.Sqrt(m.std[d] / n)
		if m.std[d] < 1e-9 {
			m.std[d] = 1
		}
	}
}

func (m *Model) standardizeInto(v, dst []float64) {
	for d := range v {
		dst[d] = (v[d] - m.mean[d]) / m.std[d]
	}
}

// TrainClustered is the "SVM clustering" baseline of §5.2.2: the training
// set is k-means clustered and resampled to half its size so that every
// cluster is represented — each cluster is guaranteed a floor quota (so
// report pairs in small clusters are included), with the remaining budget
// drawn proportionally to cluster size. The proportional draw preserves the
// overall (imbalanced) distribution, which is why the paper finds this
// variant does not significantly improve on plain SVM.
func TrainClustered(data [][]float64, labels []int, clusters int, opts Options) (*Model, error) {
	if clusters <= 0 {
		return nil, fmt.Errorf("svm: clusters = %d", clusters)
	}
	if len(data) == 0 {
		return nil, errors.New("svm: no training data")
	}
	res, err := kmeans.Run(data, clusters, kmeans.Options{Seed: opts.Seed, MaxIter: 20})
	if err != nil {
		return nil, fmt.Errorf("svm: clustering training data: %w", err)
	}
	k := len(res.Centers)
	budget := len(data) / 2
	if budget < k {
		budget = len(data)
	}
	floor := budget / (4 * k)
	if floor < 1 {
		floor = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	byCluster := make([][]int, k)
	for i, c := range res.Assign {
		byCluster[c] = append(byCluster[c], i)
	}
	var sampleData [][]float64
	var sampleLabels []int
	for _, members := range byCluster {
		quota := floor + len(members)*(budget-floor*k)/len(data)
		if quota >= len(members) {
			for _, i := range members {
				sampleData = append(sampleData, data[i])
				sampleLabels = append(sampleLabels, labels[i])
			}
			continue
		}
		perm := rng.Perm(len(members))[:quota]
		for _, p := range perm {
			sampleData = append(sampleData, data[members[p]])
			sampleLabels = append(sampleLabels, labels[members[p]])
		}
	}
	return Train(sampleData, sampleLabels, opts)
}
