// Package adrdedup is a library for scalable duplicate detection in adverse
// drug reaction (ADR) report databases, reproducing Wang & Karimi, "Parallel
// Duplicate Detection in Adverse Drug Reaction Databases with Spark"
// (EDBT 2016).
//
// The Detector implements the workflow of the paper's Figure 1: reports are
// text-processed, candidate report pairs are reduced to 7-dimensional field
// distance vectors (§4.2), and a Fast kNN classifier (§4.3) labels each pair
// duplicate or not. The classifier's kNN join is parallelized on an embedded
// Spark-like engine (internal/rdd + internal/cluster): the labelled training
// pairs are Voronoi-partitioned with k-means, cross-partition searches are
// pruned with the hyperplane bound of Algorithm 1, and the testing set can
// be pre-pruned around the positive pairs (§4.3.4).
//
// Typical use:
//
//	det, _ := adrdedup.New(adrdedup.Options{})
//	det.AddKnownReports(existing)                  // seed the database
//	det.TrainFromLabeledCases(labelled)            // expert-labelled pairs
//	matches, _ := det.Detect(newBatch)             // Eq. 3 over the batch
//
// Detect checks every new report against the existing database and the rest
// of its batch (Eq. 3), returns scored pairs, and absorbs the batch into the
// database so the next batch is checked against it too.
package adrdedup

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"adrdedup/internal/adr"
	"adrdedup/internal/candgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/intern"
	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
)

// Options configures a Detector. Zero values take defaults.
type Options struct {
	// Cluster configures the embedded execution engine (executor count,
	// memory, failure injection, network model). The zero value is a
	// 4-executor cluster.
	Cluster cluster.Config
	// Classifier configures Fast kNN (k, cluster count b, partitions c,
	// threshold θ, testing-set pruning).
	Classifier core.Config
	// ExtractPartitions sets the parallelism of report text processing
	// (0 = the engine's default parallelism).
	ExtractPartitions int
	// CandidateBlocking restricts Eq. 3's candidate pairs to reports that
	// share at least one drug or one reaction term — the classic
	// record-linkage blocking step. It cuts candidate counts by orders of
	// magnitude on large databases at the cost of missing duplicates
	// whose drug *and* reaction lists were both recoded (rare: the
	// paper's Table 1 duplicates always share the drug).
	//
	// Deprecated: equivalent to Candidates = CandidateBlock; ignored when
	// Candidates is set explicitly.
	CandidateBlocking bool
	// Candidates selects how Eq. 3's candidate pairs are generated; see
	// CandidateStrategy. The zero value is brute force (all pairs), unless
	// the legacy CandidateBlocking flag is set.
	Candidates CandidateStrategy
	// CandidateTheta is the signature Jaccard threshold used by
	// CandidatePrefixIndex (0 = the 0.5 default). Pairs whose signature
	// similarity falls below it are never vectorized or classified.
	CandidateTheta float64
}

// CandidateStrategy selects the candidate-generation algorithm feeding the
// pairwise distance stage.
type CandidateStrategy int

const (
	// CandidateBruteForce enumerates every Eq. 3 pair — exact, quadratic.
	CandidateBruteForce CandidateStrategy = iota
	// CandidateBlock keeps pairs sharing a drug or reaction term (the
	// legacy CandidateBlocking behavior).
	CandidateBlock
	// CandidatePrefixIndex keeps pairs whose signature-set Jaccard
	// similarity reaches Options.CandidateTheta, found with the
	// prefix-filtered inverted index of internal/candgen — exact with
	// respect to that threshold, far below quadratic work in practice.
	CandidatePrefixIndex
)

func (s CandidateStrategy) String() string {
	switch s {
	case CandidateBlock:
		return "block"
	case CandidatePrefixIndex:
		return "prefix-index"
	default:
		return "brute-force"
	}
}

// DefaultCandidateTheta is the signature-similarity threshold
// CandidatePrefixIndex uses when Options.CandidateTheta is zero. Duplicate
// ADR reports re-describe the same drugs, reactions, and narrative, so
// their signature sets overlap heavily; 0.5 keeps every plausibly matching
// pair while discarding the bulk of the quadratic space.
const DefaultCandidateTheta = 0.5

// Detector is the end-to-end duplicate detection pipeline bound to one
// report database. Methods must be called from one goroutine, mirroring a
// Spark driver.
type Detector struct {
	opts Options

	cl  *cluster.Cluster
	ctx *rdd.Context
	db  *adr.Database

	// interner assigns token IDs shared by every feature this detector
	// extracts, across batches, so all features stay mutually comparable
	// by the merge-scan Jaccard kernel.
	interner *intern.Interner
	// disableInterning forces the legacy string-set kernel (and string
	// blocking); it exists so differential tests can run the whole
	// pipeline against the pre-interning oracle.
	disableInterning bool
	// feats[i] is the preprocessed form of the report with ArrivalSeq i.
	feats []pairdist.Features

	// termIndex is the incremental blocking index behind CandidateBlock:
	// kind-tagged interned token ID -> arrival sequences of the reports
	// carrying that term, ascending. It covers feats[:termIndexed] and is
	// extended per arriving batch instead of being rebuilt per Detect, so
	// online ingestion pays O(batch terms), not O(database terms), per
	// call. A failed Detect truncates it together with the database.
	termIndex   map[uint64][]int32
	termIndexed int

	clf      *core.Classifier
	training []core.TrainingPair
}

// Match is one scored report pair produced by Detect.
type Match struct {
	// CaseA and CaseB identify the reports (CaseB is the newer one).
	CaseA, CaseB string
	// Score is the Eq. 5 classifier score.
	Score float64
	// Duplicate is the Eq. 6 decision at the configured θ.
	Duplicate bool
	// Pruned marks pairs eliminated by testing-set pruning.
	Pruned bool
}

// LabeledCasePair is an expert-labelled report pair referenced by case
// numbers, as a regulator's officers would record them.
type LabeledCasePair struct {
	CaseA, CaseB string
	Duplicate    bool
}

// New creates a Detector with an empty database.
func New(opts Options) (*Detector, error) {
	if err := opts.Classifier.Validate(); err != nil {
		return nil, err
	}
	cl := cluster.New(opts.Cluster)
	return &Detector{
		opts:     opts,
		cl:       cl,
		ctx:      rdd.NewContext(cl),
		db:       adr.NewDatabase(),
		interner: intern.New(),
	}, nil
}

// Database exposes the underlying report database.
func (d *Detector) Database() *adr.Database { return d.db }

// Metrics returns a snapshot of the engine's counters.
func (d *Detector) Metrics() cluster.MetricsSnapshot { return d.cl.Metrics().Snapshot() }

// Engine returns the embedded RDD context, for advanced use (experiment
// harnesses, custom jobs against the same virtual cluster).
func (d *Detector) Engine() *rdd.Context { return d.ctx }

// ValidateBatch runs structural validation (internal/adr.Validate) over a
// report batch and returns the issues keyed by case number. Issues are
// warnings — Detect tolerates partial records — but regulators generally
// want them surfaced before ingestion.
func (d *Detector) ValidateBatch(batch []adr.Report) map[string][]adr.ValidationIssue {
	out := make(map[string][]adr.ValidationIssue)
	for i, r := range batch {
		if issues := adr.Validate(r); len(issues) > 0 {
			key := r.CaseNumber
			if key == "" {
				key = fmt.Sprintf("(report #%d without case number)", i)
			}
			out[key] = issues
		}
	}
	return out
}

// AddKnownReports appends reports to the database without duplicate
// checking — the initial load of an existing regulator database.
func (d *Detector) AddKnownReports(reports []adr.Report) error {
	if len(reports) == 0 {
		return nil
	}
	if err := d.db.Add(reports...); err != nil {
		return err
	}
	return d.extendFeatures()
}

// extendFeatures preprocesses any reports not yet featurized.
func (d *Detector) extendFeatures() error {
	all := d.db.Reports()
	if len(d.feats) == len(all) {
		return nil
	}
	fresh := all[len(d.feats):]
	parts := d.opts.ExtractPartitions
	if parts <= 0 {
		parts = d.ctx.DefaultParallelism()
	}
	var feats []pairdist.Features
	var err error
	if d.disableInterning {
		feats, err = pairdist.ExtractAll(d.ctx, fresh, parts)
	} else {
		feats, err = pairdist.ExtractAllWith(d.ctx, d.interner, fresh, parts)
	}
	if err != nil {
		return fmt.Errorf("adrdedup: extracting features: %w", err)
	}
	d.feats = append(d.feats, feats...)
	return nil
}

// TrainFromLabeledCases computes distance vectors for the labelled pairs and
// (re)trains the Fast kNN classifier. All referenced case numbers must
// already be in the database.
func (d *Detector) TrainFromLabeledCases(pairs []LabeledCasePair) error {
	if len(pairs) == 0 {
		return errors.New("adrdedup: no labelled pairs")
	}
	ids := make([]pairdist.IDPair, len(pairs))
	for i, p := range pairs {
		a, ok := d.db.Get(p.CaseA)
		if !ok {
			return fmt.Errorf("adrdedup: unknown case %q", p.CaseA)
		}
		b, ok := d.db.Get(p.CaseB)
		if !ok {
			return fmt.Errorf("adrdedup: unknown case %q", p.CaseB)
		}
		label := -1
		if p.Duplicate {
			label = +1
		}
		ids[i] = pairdist.IDPair{A: a.ArrivalSeq, B: b.ArrivalSeq, Label: label}
	}
	return d.TrainFromIDPairs(ids)
}

// TrainFromIDPairs trains directly from arrival-sequence pairs with labels
// (+1 duplicate, -1 non-duplicate). It is the lower-level entry point used
// by the experiment harness, where pair sets are sampled by index.
func (d *Detector) TrainFromIDPairs(ids []pairdist.IDPair) error {
	recs, err := pairdist.ComputeVectors(d.ctx, d.feats, ids, d.classifierPartitions())
	if err != nil {
		return fmt.Errorf("adrdedup: vectorizing training pairs: %w", err)
	}
	training := make([]core.TrainingPair, len(recs))
	for i, r := range recs {
		training[i] = core.TrainingPair{Vec: r.Vec, Label: r.Label}
	}
	clf, err := core.Train(d.ctx, training, d.opts.Classifier)
	if err != nil {
		return fmt.Errorf("adrdedup: training classifier: %w", err)
	}
	d.clf = clf
	d.training = training
	return nil
}

// SaveModel serializes the trained classifier so a later process can skip
// retraining. The report database itself is saved separately (adr.WriteJSON).
func (d *Detector) SaveModel(w io.Writer) error {
	if d.clf == nil {
		return errors.New("adrdedup: no trained model to save")
	}
	return d.clf.Save(w)
}

// LoadModel restores a classifier previously written by SaveModel, binding
// it to this detector's engine. The database contents do not need to match
// the training-time database; the model is self-contained.
func (d *Detector) LoadModel(r io.Reader) error {
	clf, err := core.Load(d.ctx, r)
	if err != nil {
		return err
	}
	d.clf = clf
	d.training = nil
	return nil
}

// Trained reports whether a classifier is available.
func (d *Detector) Trained() bool { return d.clf != nil }

// TrainingSize returns the number of training pairs of the current model.
func (d *Detector) TrainingSize() int { return len(d.training) }

func (d *Detector) classifierPartitions() int {
	if d.opts.Classifier.C > 0 {
		return d.opts.Classifier.C
	}
	return d.ctx.DefaultParallelism()
}

// Detect implements Eq. 3: every report in the batch is paired with every
// earlier database report and with the batch reports before it, the pairs
// are vectorized and classified, and the batch is then absorbed into the
// database. Matches are returned sorted by descending score; pruned pairs
// are omitted unless includePruned is requested via DetectAll.
func (d *Detector) Detect(batch []adr.Report) ([]Match, error) {
	return d.detect(batch, false)
}

// DetectAll is Detect but also returns pairs eliminated by testing-set
// pruning (with Pruned set), for auditability.
func (d *Detector) DetectAll(batch []adr.Report) ([]Match, error) {
	return d.detect(batch, true)
}

func (d *Detector) detect(batch []adr.Report, includePruned bool) (_ []Match, retErr error) {
	if d.clf == nil {
		return nil, errors.New("adrdedup: classifier not trained")
	}
	if len(batch) == 0 {
		return nil, nil
	}
	// A long-lived detector (the online service) runs many Detects against
	// one cluster. Each run's shuffle map outputs are dead once its matches
	// are collected, so release them on exit rather than letting the
	// shuffle service retain every batch's outputs for the cluster's
	// lifetime. Training-era shuffles (ids at or below the mark) stay.
	shuffles := d.ctx.Cluster().Shuffles()
	mark := shuffles.Mark()
	defer shuffles.ReleaseSince(mark)
	existing := d.db.Len()
	nFeats := len(d.feats)
	if err := d.db.Add(batch...); err != nil {
		return nil, err
	}
	// Detect must be atomic: either the batch is absorbed and its matches
	// returned, or the detector is left exactly as it was. Without this
	// rollback, a transient failure after Add left the batch in the
	// database but unreported, and retrying the same batch failed on its
	// own case numbers.
	defer func() {
		if retErr != nil {
			d.db.Truncate(existing)
			d.feats = d.feats[:nFeats]
			d.truncateTermIndex(nFeats)
		}
	}()
	if err := d.extendFeatures(); err != nil {
		return nil, err
	}
	total := d.db.Len()

	// Candidate pairs of Eq. 3: new x earlier, including earlier batch
	// members (r is checked against A ∪ R - r, deduplicated by ordering).
	ids, err := d.candidates(existing, total)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, nil
	}
	recs, err := pairdist.ComputeVectors(d.ctx, d.feats, ids, d.classifierPartitions())
	if err != nil {
		return nil, fmt.Errorf("adrdedup: vectorizing candidate pairs: %w", err)
	}
	vecs := make([][]float64, len(recs))
	for i, r := range recs {
		vecs[i] = r.Vec
	}
	results, _, err := d.clf.Classify(vecs)
	if err != nil {
		return nil, fmt.Errorf("adrdedup: classifying candidate pairs: %w", err)
	}

	reports := d.db.Reports()
	matches := make([]Match, 0, len(results))
	for _, res := range results {
		if res.Pruned && !includePruned {
			continue
		}
		pair := ids[res.ID]
		matches = append(matches, Match{
			CaseA:     reports[pair.A].CaseNumber,
			CaseB:     reports[pair.B].CaseNumber,
			Score:     res.Score,
			Duplicate: res.Label > 0,
			Pruned:    res.Pruned,
		})
	}
	// Descending score; ties broken by case numbers so equal-scored
	// matches come out in one deterministic order regardless of sort
	// internals or candidate enumeration order.
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		if matches[i].CaseA != matches[j].CaseA {
			return matches[i].CaseA < matches[j].CaseA
		}
		return matches[i].CaseB < matches[j].CaseB
	})
	return matches, nil
}

// candidates dispatches to the configured candidate-generation strategy.
func (d *Detector) candidates(existing, total int) ([]pairdist.IDPair, error) {
	strategy := d.opts.Candidates
	if strategy == CandidateBruteForce && d.opts.CandidateBlocking {
		strategy = CandidateBlock
	}
	switch strategy {
	case CandidateBlock:
		return d.blockedCandidates(existing, total), nil
	case CandidatePrefixIndex:
		return d.prefixCandidates(existing, total)
	case CandidateBruteForce:
		var ids []pairdist.IDPair
		for b := existing; b < total; b++ {
			for a := 0; a < b; a++ {
				ids = append(ids, pairdist.IDPair{A: a, B: b})
			}
		}
		return ids, nil
	default:
		return nil, fmt.Errorf("adrdedup: unknown candidate strategy %d", strategy)
	}
}

// prefixCandidates generates Eq. 3's pairs through the prefix-filtered
// inverted index (internal/candgen): exactly the pairs whose signature sets
// reach CandidateTheta, restricted to those touching the new batch.
func (d *Detector) prefixCandidates(existing, total int) ([]pairdist.IDPair, error) {
	theta := d.opts.CandidateTheta
	if theta == 0 {
		theta = DefaultCandidateTheta
	}
	sigs, err := candgen.Signatures(d.feats[:total])
	if err != nil {
		return nil, fmt.Errorf("adrdedup: building candidate signatures: %w", err)
	}
	pairs, _, err := candgen.Pairs(d.ctx, sigs, candgen.Params{
		Theta:      theta,
		Partitions: d.classifierPartitions(),
		MinArrival: existing,
	})
	if err != nil {
		return nil, fmt.Errorf("adrdedup: generating prefix-index candidates: %w", err)
	}
	return pairs, nil
}

// blockADRKind tags ADR-vocabulary token IDs apart from drug tokens in the
// high bits of the term-index key, so the two interner namespaces never
// collide in one map.
const blockADRKind = uint64(1) << 32

// extendTermIndex appends the terms of feats[termIndexed:total] to the
// incremental blocking index. Posting lists stay sorted ascending because
// reports are indexed in arrival order.
func (d *Detector) extendTermIndex(total int) {
	if d.termIndex == nil {
		d.termIndex = make(map[uint64][]int32)
	}
	for i := d.termIndexed; i < total; i++ {
		for _, t := range d.feats[i].DrugIDs {
			d.termIndex[uint64(t)] = append(d.termIndex[uint64(t)], int32(i))
		}
		for _, t := range d.feats[i].ADRIDs {
			d.termIndex[blockADRKind|uint64(t)] = append(d.termIndex[blockADRKind|uint64(t)], int32(i))
		}
	}
	d.termIndexed = total
}

// truncateTermIndex rolls the blocking index back so it covers only
// feats[:n], undoing extendTermIndex for a batch whose Detect failed.
// Posting lists are ascending, so rollback pops entries >= n off each tail.
func (d *Detector) truncateTermIndex(n int) {
	if d.termIndexed <= n {
		return
	}
	for k, list := range d.termIndex {
		i := len(list)
		for i > 0 && int(list[i-1]) >= n {
			i--
		}
		switch {
		case i == 0:
			delete(d.termIndex, k)
		case i < len(list):
			d.termIndex[k] = list[:i]
		}
	}
	d.termIndexed = n
}

// blockedCandidates generates the Eq. 3 candidate set under blocking: a new
// report is paired only with earlier reports that share a drug or reaction
// term. The inverted index is keyed by interned token IDs (drug and ADR
// vocabularies tagged apart in the high bits), so building it does no
// string hashing or key concatenation, and it persists across Detect calls:
// each batch only appends its own postings, which is what keeps per-arrival
// cost flat when the detector runs behind a long-lived ingest service
// (internal/serve).
func (d *Detector) blockedCandidates(existing, total int) []pairdist.IDPair {
	d.extendTermIndex(total)
	seen := make(map[[2]int]bool)
	var ids []pairdist.IDPair
	for b := existing; b < total; b++ {
		consider := func(terms []uint32, kind uint64) {
			for _, t := range terms {
				for _, a := range d.termIndex[kind|uint64(t)] {
					if int(a) >= b {
						// Postings ascend; the rest are b or newer.
						break
					}
					k := [2]int{int(a), b}
					if seen[k] {
						continue
					}
					seen[k] = true
					ids = append(ids, pairdist.IDPair{A: int(a), B: b})
				}
			}
		}
		consider(d.feats[b].DrugIDs, 0)
		consider(d.feats[b].ADRIDs, blockADRKind)
	}
	return ids
}

// Duplicates filters matches to the positive decisions.
func Duplicates(matches []Match) []Match {
	out := make([]Match, 0, len(matches))
	for _, m := range matches {
		if m.Duplicate {
			out = append(out, m)
		}
	}
	return out
}
