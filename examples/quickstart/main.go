// Quickstart: generate a small synthetic ADR corpus, train the Fast kNN
// duplicate classifier on expert labels, and detect duplicates in a batch of
// newly arrived reports.
package main

import (
	"fmt"
	"log"
	"sort"

	"adrdedup"
	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
)

func main() {
	// 1. A synthetic corpus with known ground truth (the real TGA data is
	// proprietary). 1,500 reports, 60 injected duplicate pairs.
	corpus := adrgen.Generate(adrgen.Config{
		NumReports: 1500, DuplicatePairs: 60, NumDrugs: 300, NumADRs: 500, Seed: 7,
	})

	// 2. A detector over a simulated 8-executor cluster. Theta is the
	// Eq. 6 duplicate score threshold.
	det, err := adrdedup.New(adrdedup.Options{
		Cluster:    cluster.Config{Executors: 8},
		Classifier: core.Config{K: 9, B: 16, C: 4, Theta: 0},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Load the "existing database": everything except the last 25
	// reports, which play the part of a newly arrived batch.
	cut := len(corpus.Reports) - 25
	existing := stripSeq(corpus.Reports[:cut])
	batch := stripSeq(corpus.Reports[cut:])
	if err := det.AddKnownReports(existing); err != nil {
		log.Fatal(err)
	}

	// 4. Train from expert-labelled pairs: the ground-truth duplicates
	// that live entirely in the database, plus sampled non-duplicates —
	// including confusable same-campaign pairs, as a regulator's curated
	// non-duplicate collection would.
	labels := makeLabels(corpus, det, 3000)
	if err := det.TrainFromLabeledCases(labels); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d labelled pairs\n", det.TrainingSize())

	// 5. Detect: the batch is checked against the database and itself
	// (Eq. 3), then absorbed.
	matches, err := det.Detect(batch)
	if err != nil {
		log.Fatal(err)
	}
	dups := adrdedup.Duplicates(matches)
	fmt.Printf("scored %d candidate pairs, flagged %d as duplicates\n", len(matches), len(dups))
	for _, m := range dups {
		truth := ""
		if isTrue(corpus, m) {
			truth = " (ground truth: duplicate)"
		}
		fmt.Printf("  %s ~ %s  score %.2f%s\n", m.CaseA, m.CaseB, m.Score, truth)
	}

	snap := det.Metrics()
	fmt.Printf("engine: %d stages, %d records, %d pair comparisons, %.1fMB shuffled\n",
		snap.StagesRun, snap.RecordsProcessed, snap.Comparisons,
		float64(snap.ShuffleBytesWritten)/1e6)
}

func stripSeq(rs []adr.Report) []adr.Report {
	out := make([]adr.Report, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].ArrivalSeq = 0
	}
	return out
}

// makeLabels builds the expert-labelled training pairs: all in-database
// ground-truth duplicates plus sampled negatives (one third confusable
// same-campaign pairs).
func makeLabels(corpus *adrgen.Corpus, det *adrdedup.Detector, negatives int) []adrdedup.LabeledCasePair {
	var out []adrdedup.LabeledCasePair
	inDB := func(caseNum string) bool {
		_, ok := det.Database().Get(caseNum)
		return ok
	}
	for _, d := range corpus.Duplicates {
		if inDB(d.CaseA) && inDB(d.CaseB) {
			out = append(out, adrdedup.LabeledCasePair{CaseA: d.CaseA, CaseB: d.CaseB, Duplicate: true})
		}
	}
	count := 0
	byCampaign := make(map[int][]int)
	for i, camp := range corpus.CampaignOf {
		if camp >= 0 && inDB(corpus.Reports[i].CaseNumber) {
			byCampaign[camp] = append(byCampaign[camp], i)
		}
	}
	campIDs := make([]int, 0, len(byCampaign))
	for id := range byCampaign {
		campIDs = append(campIDs, id)
	}
	sort.Ints(campIDs)
	for _, id := range campIDs {
		members := byCampaign[id]
		for i := 0; i+1 < len(members) && count < negatives/3; i++ {
			a, b := members[i], members[i+1]
			if corpus.IsDuplicatePair(a, b) {
				continue
			}
			out = append(out, adrdedup.LabeledCasePair{
				CaseA: corpus.Reports[a].CaseNumber, CaseB: corpus.Reports[b].CaseNumber,
			})
			count++
		}
	}
	reports := det.Database().Reports()
	for i := 0; i < len(reports)-7 && count < negatives; i += 2 {
		a, b := reports[i], reports[i+7]
		if corpus.IsDuplicatePair(a.ArrivalSeq, b.ArrivalSeq) {
			continue
		}
		out = append(out, adrdedup.LabeledCasePair{CaseA: a.CaseNumber, CaseB: b.CaseNumber})
		count++
	}
	return out
}

func isTrue(corpus *adrgen.Corpus, m adrdedup.Match) bool {
	for _, d := range corpus.Duplicates {
		if (d.CaseA == m.CaseA && d.CaseB == m.CaseB) || (d.CaseA == m.CaseB && d.CaseB == m.CaseA) {
			return true
		}
	}
	return false
}
