// Classifier shootout: the paper's Fig. 5 comparison in miniature. Builds an
// imbalanced labelled pair set from a synthetic corpus, trains Fast kNN,
// a linear SVM, and the SVM-clustering variant, and compares precision-recall
// behaviour.
package main

import (
	"fmt"
	"log"
	"os"

	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/eval"
	"adrdedup/internal/experiments"
	"adrdedup/internal/svm"
)

func main() {
	env, err := experiments.NewEnv(experiments.EnvConfig{
		Cluster: cluster.Config{Executors: 8},
		Corpus:  experiments.SmallCorpus(3),
		Seed:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	data, err := env.BuildPairData(40_000, 8_000, 0.3, 5)
	if err != nil {
		log.Fatal(err)
	}
	positives := 0
	for _, l := range data.TestLabels {
		if l == +1 {
			positives++
		}
	}
	fmt.Printf("train: %d pairs (%d duplicates) — test: %d pairs (%d duplicates)\n",
		len(data.Train), len(env.TrainDups), len(data.TestVecs), positives)

	// Fast kNN.
	clf, err := core.Train(env.Ctx, data.Train, core.Config{K: 9, B: 24, C: 6, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	results, stats, err := clf.Classify(data.TestVecs)
	if err != nil {
		log.Fatal(err)
	}
	knnScores := make([]float64, len(results))
	for _, r := range results {
		knnScores[r.ID] = r.Score
	}

	// SVM baselines.
	vecs, labels := experiments.SVMLabels(data.Train)
	svmModel, err := svm.Train(vecs, labels, svm.Options{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	clModel, err := svm.TrainClustered(vecs, labels, 8, svm.Options{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, scores []float64) {
		aupr, err := eval.AUPR(scores, data.TestLabels)
		if err != nil {
			log.Fatal(err)
		}
		best := eval.Confusion{}
		bestF1 := -1.0
		curve, err := eval.PRCurve(scores, data.TestLabels)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range curve {
			c := eval.ConfusionAt(scores, data.TestLabels, p.Threshold)
			if f1 := c.F1(); f1 > bestF1 {
				bestF1 = f1
				best = c
			}
		}
		fmt.Printf("%-16s AUPR %.3f | best F1 %.3f (precision %.3f, recall %.3f)\n",
			name, aupr, bestF1, best.Precision(), best.Recall())
	}
	report("Fast kNN", knnScores)
	report("SVM", svmModel.DecisionBatch(data.TestVecs))
	report("SVM clustering", clModel.DecisionBatch(data.TestVecs))

	fmt.Printf("\nFast kNN cost: %d intra + %d cross comparisons (ratio %.4f), virtual time %v\n",
		stats.IntraClusterComparisons, stats.CrossClusterComparisons,
		float64(stats.CrossClusterComparisons)/float64(stats.IntraClusterComparisons),
		stats.VirtualTime.Round(1e6))

	fmt.Println("\nFast kNN precision-recall curve (TSV):")
	curve, err := eval.PRCurve(knnScores, data.TestLabels)
	if err != nil {
		log.Fatal(err)
	}
	step := len(curve)/15 + 1
	sampled := make([]eval.Point, 0, 16)
	for i := 0; i < len(curve); i += step {
		sampled = append(sampled, curve[i])
	}
	if err := eval.WriteCurve(os.Stdout, sampled); err != nil {
		log.Fatal(err)
	}
}
