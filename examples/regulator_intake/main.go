// Regulator intake: the paper's motivating scenario. A drug regulator's
// database receives report batches continuously; each batch is checked for
// duplicates against everything received so far (Eq. 3), absorbed, and the
// confirmed duplicates feed back into the labelled training data (the dashed
// line in the paper's Figure 1) before the classifier is retrained.
package main

import (
	"fmt"
	"log"
	"sort"

	"adrdedup"
	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
)

func main() {
	corpus := adrgen.Generate(adrgen.Config{
		NumReports: 2400, DuplicatePairs: 100, NumDrugs: 400, NumADRs: 600, Seed: 11,
	})

	det, err := adrdedup.New(adrdedup.Options{
		Cluster:    cluster.Config{Executors: 12, CoresPerExecutor: 1},
		Classifier: core.Config{K: 9, B: 20, C: 4, Theta: 0},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap: the first 1,400 reports are the historical database; its
	// duplicates were labelled by the regulator's officers.
	const bootstrap = 1400
	if err := det.AddKnownReports(strip(corpus.Reports[:bootstrap])); err != nil {
		log.Fatal(err)
	}
	training := initialLabels(corpus, det, 4000)
	if err := det.TrainFromLabeledCases(training); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: %d reports, %d labelled pairs\n", det.Database().Len(), det.TrainingSize())

	// Intake: the remaining reports arrive in batches of 200 (roughly a
	// fortnight of TGA volume).
	const batchSize = 200
	totalFlagged, totalTrue := 0, 0
	for start := bootstrap; start < len(corpus.Reports); start += batchSize {
		end := start + batchSize
		if end > len(corpus.Reports) {
			end = len(corpus.Reports)
		}
		batch := strip(corpus.Reports[start:end])
		matches, err := det.Detect(batch)
		if err != nil {
			log.Fatal(err)
		}
		flagged := adrdedup.Duplicates(matches)
		trueCount := 0
		for _, m := range flagged {
			if isTrue(corpus, m) {
				trueCount++
			}
		}
		totalFlagged += len(flagged)
		totalTrue += trueCount
		fmt.Printf("batch %4d-%4d: %6d pairs scored, %2d flagged (%d confirmed by officers)\n",
			start, end, len(matches), len(flagged), trueCount)

		// Feedback loop: officers confirm the flagged pairs; confirmed
		// duplicates (and refuted ones as non-duplicates) join the
		// labelled data and the classifier is retrained.
		for _, m := range flagged {
			training = append(training, adrdedup.LabeledCasePair{
				CaseA: m.CaseA, CaseB: m.CaseB, Duplicate: isTrue(corpus, m),
			})
		}
		if err := det.TrainFromLabeledCases(training); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\nintake complete: database %d reports, %d pairs flagged, %d true duplicates confirmed\n",
		det.Database().Len(), totalFlagged, totalTrue)
	snap := det.Metrics()
	fmt.Printf("engine totals: %d stages, %d comparisons, %d task retries, virtual time %v\n",
		snap.StagesRun, snap.Comparisons, snap.TaskFailures,
		det.Engine().Cluster().VirtualElapsed().Round(1e6))
}

func strip(rs []adr.Report) []adr.Report {
	out := make([]adr.Report, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].ArrivalSeq = 0
	}
	return out
}

func initialLabels(corpus *adrgen.Corpus, det *adrdedup.Detector, negatives int) []adrdedup.LabeledCasePair {
	var out []adrdedup.LabeledCasePair
	inDB := func(c string) bool { _, ok := det.Database().Get(c); return ok }
	for _, d := range corpus.Duplicates {
		if inDB(d.CaseA) && inDB(d.CaseB) {
			out = append(out, adrdedup.LabeledCasePair{CaseA: d.CaseA, CaseB: d.CaseB, Duplicate: true})
		}
	}
	count := 0
	byCampaign := make(map[int][]int)
	for i, camp := range corpus.CampaignOf {
		if camp >= 0 && inDB(corpus.Reports[i].CaseNumber) {
			byCampaign[camp] = append(byCampaign[camp], i)
		}
	}
	campIDs := make([]int, 0, len(byCampaign))
	for id := range byCampaign {
		campIDs = append(campIDs, id)
	}
	sort.Ints(campIDs)
	for _, id := range campIDs {
		members := byCampaign[id]
		for i := 0; i+1 < len(members) && count < negatives/3; i++ {
			if corpus.IsDuplicatePair(members[i], members[i+1]) {
				continue
			}
			out = append(out, adrdedup.LabeledCasePair{
				CaseA: corpus.Reports[members[i]].CaseNumber,
				CaseB: corpus.Reports[members[i+1]].CaseNumber,
			})
			count++
		}
	}
	reports := det.Database().Reports()
	for i := 0; i < len(reports)-11 && count < negatives; i++ {
		a, b := reports[i], reports[i+11]
		if corpus.IsDuplicatePair(a.ArrivalSeq, b.ArrivalSeq) {
			continue
		}
		out = append(out, adrdedup.LabeledCasePair{CaseA: a.CaseNumber, CaseB: b.CaseNumber})
		count++
	}
	return out
}

func isTrue(corpus *adrgen.Corpus, m adrdedup.Match) bool {
	for _, d := range corpus.Duplicates {
		if (d.CaseA == m.CaseA && d.CaseB == m.CaseB) || (d.CaseA == m.CaseB && d.CaseB == m.CaseA) {
			return true
		}
	}
	return false
}
