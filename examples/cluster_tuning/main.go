// Cluster tuning: how the training cluster number b trades intra-cluster
// work against cross-cluster work (the paper's Figs. 7-8 in miniature), and
// what happens when joined partitions stop fitting in executor memory.
package main

import (
	"fmt"
	"log"

	"adrdedup/internal/cluster"
	"adrdedup/internal/experiments"
)

func main() {
	env, err := experiments.NewEnv(experiments.EnvConfig{
		Cluster: cluster.Config{Executors: 16, SchedulerOverheadMS: 2, ShuffleLatencyMS: 1},
		Corpus:  experiments.SmallCorpus(9),
		Seed:    10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sweep 1: comfortable memory (64MB executors)")
	points, err := experiments.Fig7(env, experiments.Fig7Params{
		Bs: []int{5, 10, 20, 40, 80}, TrainSize: 60_000, TestSize: 5_000, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	printSweep(points)

	fmt.Println("\nsweep 2: tight memory (1MB executors) — small b overruns executor memory,")
	fmt.Println("tasks spill and time out, and retries stretch the execution time:")
	points, err = experiments.Fig7(env, experiments.Fig7Params{
		Bs: []int{5, 10, 20, 40, 80}, TrainSize: 60_000, TestSize: 5_000, Seed: 11,
		PressureMemoryMB: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	printSweep(points)
}

func printSweep(points []experiments.Fig7Point) {
	fmt.Printf("%4s %14s %14s %10s %10s %14s %9s\n",
		"b", "intra cmps", "cross cmps", "ratio", "clusters+", "exec time", "pressure")
	for _, p := range points {
		fmt.Printf("%4d %14d %14d %9.4f %10d %14v %9d\n",
			p.B, p.IntraClusterComparisons, p.CrossClusterComparisons,
			p.CrossIntraRatio, p.AdditionalClustersChecked,
			p.ExecutionTime.Round(1e6), p.PressureEvents)
	}
}
