module adrdedup

go 1.22
